(* l2/sensor-agg — the aggregation hook a sensor node runs over a batch
   of raw ADC readings before publishing.

   96 unsigned 16-bit little-endian samples in a read-only buffer.  One
   pass computes an exponential moving average (a = (3a + s) >> 2, seeded
   with the first sample), the min, the max, and how many samples exceed
   a fixed alarm threshold.  All four aggregates pack into the result, so
   equivalence checks every branch of the kernel at once. *)

let n_samples = 96
let seed = 0x22
let threshold = 40000

let input () = Harness.synth_bytes ~seed (n_samples * 2)

let reference () =
  let data = input () in
  let ema = ref 0 and minv = ref 65535 and maxv = ref 0 and above = ref 0 in
  for i = 0 to n_samples - 1 do
    let s = Bytes.get_uint16_le data (i * 2) in
    if i = 0 then ema := s else ema := ((!ema * 3) + s) lsr 2;
    if s < !minv then minv := s;
    if s > !maxv then maxv := s;
    if s > threshold then incr above
  done;
  Int64.of_int
    ((((((!ema lsl 16) lor !minv) lsl 16) lor !maxv) lsl 8) lor !above)

(* r1 = sample buffer base. *)
let ebpf_source =
  {|
      ; one-pass aggregation over 96 u16 samples
      mov   r2, 0              ; i
      mov   r3, 0              ; ema
      mov   r4, 65535          ; min
      mov   r5, 0              ; max
      mov   r6, 0              ; above
    agg_loop:
      jsgt  r2, 95, agg_done
      mov   r7, r2
      lsh   r7, 1
      add   r7, r1
      ldxh  r8, [r7]           ; s
      jne   r2, 0, smooth
      mov   r3, r8             ; first sample seeds the average
      ja    minmax
    smooth:
      mul   r3, 3
      add   r3, r8
      rsh   r3, 2
    minmax:
      jsge  r8, r4, no_min
      mov   r4, r8
    no_min:
      jsle  r8, r5, no_max
      mov   r5, r8
    no_max:
      jsle  r8, 40000, no_above
      add   r6, 1
    no_above:
      add   r2, 1
      ja    agg_loop
    agg_done:
      mov   r0, r3
      lsh   r0, 16
      or    r0, r4
      lsh   r0, 16
      or    r0, r5
      lsh   r0, 8
      or    r0, r6
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let data_vaddr = 0x3700_0000L

let regions () =
  [
    Femto_vm.Region.make ~name:"samples" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (input ());
  ]

let ebpf_args = [| data_vaddr |]

let script_source =
  {|
    fn run(w) {
      let ema = 0;
      let minv = 65535;
      let maxv = 0;
      let above = 0;
      let i = 0;
      while (i < 96) {
        let s = w[i];
        if (i == 0) {
          ema = s;
        } else {
          ema = ((ema * 3) + s) >> 2;
        }
        if (s < minv) { minv = s; }
        if (s > maxv) { maxv = s; }
        if (s > 40000) { above = above + 1; }
        i = i + 1;
      }
      return ((((((ema << 16) | minv) << 16) | maxv) << 8) | above);
    }
  |}

let mem_source =
  {|
    fn run(mem) {
      let ema = 0;
      let minv = 65535;
      let maxv = 0;
      let above = 0;
      let i = 0;
      while (i < 96) {
        let s = load16(mem + (i * 2));
        if (i == 0) {
          ema = s;
        } else {
          ema = ((ema * 3) + s) >> 2;
        }
        if (s < minv) { minv = s; }
        if (s > maxv) { maxv = s; }
        if (s > 40000) { above = above + 1; }
        i = i + 1;
      }
      return ((((((ema << 16) | minv) << 16) | maxv) << 8) | above);
    }
  |}

let script_args () =
  let data = input () in
  [
    Femto_script.Value.Array
      (ref
         (Array.init n_samples (fun i ->
              Femto_script.Value.Int
                (Int64.of_int (Bytes.get_uint16_le data (i * 2))))));
  ]

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let i = 0 in
  let s = 1 and ema = 2 and minv = 3 and maxv = 4 and above = 5 in
  let body =
    [
      I64_const 65535L; Local_set minv;
      Block
        [
          Loop
            [
              Local_get i; I32_const 95l; Relop (I32, Gt_s); Br_if 1;
              Local_get i; I32_const 1l; Binop (I32, Shl);
              I32_load16_u 0; I64_extend_i32_u; Local_set s;
              Local_get i; I32_eqz;
              If
                ( [ Local_get s; Local_set ema ],
                  [
                    Local_get ema; I64_const 3L; Binop (I64, Mul);
                    Local_get s; Binop (I64, Add);
                    I64_const 2L; Binop (I64, Shr_u); Local_set ema;
                  ] );
              Local_get s; Local_get minv; Relop (I64, Lt_s);
              If ([ Local_get s; Local_set minv ], []);
              Local_get s; Local_get maxv; Relop (I64, Gt_s);
              If ([ Local_get s; Local_set maxv ], []);
              Local_get s; I64_const 40000L; Relop (I64, Gt_s);
              If
                ( [
                    Local_get above; I64_const 1L; Binop (I64, Add);
                    Local_set above;
                  ],
                  [] );
              Local_get i; I32_const 1l; Binop (I32, Add); Local_set i;
              Br 0;
            ];
        ];
      Local_get ema; I64_const 16L; Binop (I64, Shl);
      Local_get minv; Binop (I64, Or);
      I64_const 16L; Binop (I64, Shl);
      Local_get maxv; Binop (I64, Or);
      I64_const 8L; Binop (I64, Shl);
      Local_get above; Binop (I64, Or);
    ]
  in
  let ftype = { params = []; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs =
      [| { ftype; locals = [ I32; I64; I64; I64; I64; I64 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l2/sensor-agg";
    layer = "l2";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program ~regions ~args:ebpf_args ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run" ~input:(input ())
          ~args:[] ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:script_args ()
      @ [
          Harness.to_ebpf_impl ~source:mem_source ~entry:"run" ~regions
            ~args:ebpf_args ();
        ];
  }
