(* l1/fib — iterative Fibonacci, the corpus's pure ALU-and-branch kernel.

   One tight loop of register moves, adds and a conditional back edge: no
   memory traffic, no helper calls.  What the runtimes race on is raw
   dispatch of the three cheapest operations they have.  All runtimes
   compute fib(80) over int64 (no wraparound: fib(80) < 2^63). *)

let n = 80

let reference () =
  let a = ref 0L and b = ref 1L in
  for _ = 1 to n do
    let t = !b in
    b := Int64.add !a !b;
    a := t
  done;
  !a

(* r1 = n, result in r0. *)
let ebpf_source =
  {|
      ; iterative fibonacci: r1 = n
      mov   r2, 0             ; a
      mov   r3, 1             ; b
      jeq   r1, 0, done
    fib_loop:
      mov   r4, r3            ; t = b
      add   r3, r2            ; b = a + b
      mov   r2, r4            ; a = t
      sub   r1, 1
      jne   r1, 0, fib_loop
    done:
      mov   r0, r2
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

(* Pure-integer MiniScript: the same source serves the tree evaluator,
   the stack VM and the to_ebpf backend. *)
let script_source =
  {|
    fn run(n) {
      let a = 0;
      let b = 1;
      let i = 0;
      while (i < n) {
        let t = b;
        b = a + b;
        a = t;
        i = i + 1;
      }
      return a;
    }
  |}

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let n = 0 and a = 1 and b = 2 and t = 3 in
  let body =
    [
      I64_const 0L; Local_set a;
      I64_const 1L; Local_set b;
      Block
        [
          Loop
            [
              Local_get n; I64_eqz; Br_if 1;
              Local_get b; Local_set t;
              Local_get a; Local_get b; Binop (I64, Add); Local_set b;
              Local_get t; Local_set a;
              Local_get n; I64_const 1L; Binop (I64, Sub); Local_set n;
              Br 0;
            ];
        ];
      Local_get a;
    ]
  in
  let ftype = { params = [ I64 ]; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs = [| { ftype; locals = [ I64; I64; I64 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  let arg = Int64.of_int n in
  {
    Harness.wname = "l1/fib";
    layer = "l1";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program
        ~regions:(fun () -> [])
        ~args:[| arg |] ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run"
          ~args:[ Femto_wasm_mini.Ast.V_i64 arg ]
          ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:(fun () -> [ Femto_script.Value.Int arg ])
          ()
      @ [
          Harness.to_ebpf_impl ~source:script_source ~entry:"run"
            ~regions:(fun () -> [])
            ~args:[| arg |] ();
        ];
  }
