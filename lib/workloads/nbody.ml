(* l1/nbody-lite — three bodies on a 1-D 20-bit ring, 64 integrator
   steps.  The corpus's straight-line-arithmetic kernel: long dependency
   chains of mul/shift/mask with a single loop back edge, no memory
   traffic at all.

   Everything is computed in the 20-bit masked domain so each operation
   is exact in int64 on every runtime (no overflow, no signed shifts, no
   division), making bit-identical cross-runtime results possible.  The
   "pull" each body feels from another is ((dx & M) * 3) >> 9; velocity
   and position wrap on the ring; a masked kinetic-energy accumulator
   folds every step into the final packed result. *)

let mask = (1 lsl 20) - 1
let steps = 64

let reference () =
  let x0 = ref 1000 and x1 = ref 200000 and x2 = ref 700000 in
  let v0 = ref 3 and v1 = ref 5 and v2 = ref 7 in
  let e = ref 0 in
  let pull a b = (((b - a) land mask) * 3) lsr 9 in
  for _ = 1 to steps do
    v0 := (!v0 + pull !x0 !x1 + pull !x0 !x2) land mask;
    v1 := (!v1 + pull !x1 !x0 + pull !x1 !x2) land mask;
    v2 := (!v2 + pull !x2 !x0 + pull !x2 !x1) land mask;
    x0 := (!x0 + !v0) land mask;
    x1 := (!x1 + !v1) land mask;
    x2 := (!x2 + !v2) land mask;
    e := (!e + (((!v0 * !v0) + (!v1 * !v1) + (!v2 * !v2)) lsr 5)) land mask
  done;
  let r = ((((!e lsl 20) lor !x0) lsl 20) lor !x1) in
  let r = r + (!x2 lsl 10) + (!v0 lsl 5) + !v1 + (!v2 lsl 15) in
  Int64.of_int r

(* No inputs: constants inline.  x0..x2 in r1..r3, v0..v2 in r4..r6,
   energy in r7, step counter in r8, scratch in r9/r0. *)
let ebpf_source =
  {|
      ; nbody-lite: 3 bodies, 1-D 20-bit ring, 64 steps
      mov   r1, 1000           ; x0
      mov   r2, 200000         ; x1
      mov   r3, 700000         ; x2
      mov   r4, 3              ; v0
      mov   r5, 5              ; v1
      mov   r6, 7              ; v2
      mov   r7, 0              ; e
      mov   r8, 64             ; steps
    step:
      ; v0 += pull(x0,x1) + pull(x0,x2)
      mov   r9, r2
      sub   r9, r1
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r4, r9
      mov   r9, r3
      sub   r9, r1
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r4, r9
      and   r4, 0xfffff
      ; v1 += pull(x1,x0) + pull(x1,x2)
      mov   r9, r1
      sub   r9, r2
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r5, r9
      mov   r9, r3
      sub   r9, r2
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r5, r9
      and   r5, 0xfffff
      ; v2 += pull(x2,x0) + pull(x2,x1)
      mov   r9, r1
      sub   r9, r3
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r6, r9
      mov   r9, r2
      sub   r9, r3
      and   r9, 0xfffff
      mul   r9, 3
      rsh   r9, 9
      add   r6, r9
      and   r6, 0xfffff
      ; positions advance on the ring
      add   r1, r4
      and   r1, 0xfffff
      add   r2, r5
      and   r2, 0xfffff
      add   r3, r6
      and   r3, 0xfffff
      ; e = (e + ((v0^2 + v1^2 + v2^2) >> 5)) & M
      mov   r9, r4
      mul   r9, r4
      mov   r0, r9
      mov   r9, r5
      mul   r9, r5
      add   r0, r9
      mov   r9, r6
      mul   r9, r6
      add   r0, r9
      rsh   r0, 5
      add   r7, r0
      and   r7, 0xfffff
      sub   r8, 1
      jne   r8, 0, step
      ; pack: (((e<<20)|x0)<<20)|x1 then fold x2/v0/v1/v2 in
      mov   r0, r7
      lsh   r0, 20
      or    r0, r1
      lsh   r0, 20
      or    r0, r2
      mov   r9, r3
      lsh   r9, 10
      add   r0, r9
      mov   r9, r4
      lsh   r9, 5
      add   r0, r9
      add   r0, r5
      mov   r9, r6
      lsh   r9, 15
      add   r0, r9
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

(* Pure-integer MiniScript: serves tree, stack and to_ebpf alike. *)
let script_source =
  {|
    fn run() {
      let x0 = 1000;
      let x1 = 200000;
      let x2 = 700000;
      let v0 = 3;
      let v1 = 5;
      let v2 = 7;
      let e = 0;
      let s = 0;
      while (s < 64) {
        v0 = (v0 + ((((x1 - x0) & 1048575) * 3) >> 9)
                 + ((((x2 - x0) & 1048575) * 3) >> 9)) & 1048575;
        v1 = (v1 + ((((x0 - x1) & 1048575) * 3) >> 9)
                 + ((((x2 - x1) & 1048575) * 3) >> 9)) & 1048575;
        v2 = (v2 + ((((x0 - x2) & 1048575) * 3) >> 9)
                 + ((((x1 - x2) & 1048575) * 3) >> 9)) & 1048575;
        x0 = (x0 + v0) & 1048575;
        x1 = (x1 + v1) & 1048575;
        x2 = (x2 + v2) & 1048575;
        e = (e + (((v0 * v0) + (v1 * v1) + (v2 * v2)) >> 5)) & 1048575;
        s = s + 1;
      }
      let r = (((e << 20) | x0) << 20) | x1;
      r = r + (x2 << 10) + (v0 << 5) + v1 + (v2 << 15);
      return r;
    }
  |}

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let x0 = 0 and x1 = 1 and x2 = 2 in
  let v0 = 3 and v1 = 4 and v2 = 5 in
  let e = 6 and s = 7 and r = 8 in
  let m = 1048575L in
  (* ((xb - xa) & M) * 3 >> 9, left on the stack *)
  let pull xa xb =
    [
      Local_get xb; Local_get xa; Binop (I64, Sub);
      I64_const m; Binop (I64, And);
      I64_const 3L; Binop (I64, Mul);
      I64_const 9L; Binop (I64, Shr_u);
    ]
  in
  let vel v xa xb xc =
    [ Local_get v ] @ pull xa xb
    @ [ Binop (I64, Add) ]
    @ pull xa xc
    @ [
        Binop (I64, Add); I64_const m; Binop (I64, And); Local_set v;
      ]
  in
  let advance x v =
    [
      Local_get x; Local_get v; Binop (I64, Add);
      I64_const m; Binop (I64, And); Local_set x;
    ]
  in
  let sq v = [ Local_get v; Local_get v; Binop (I64, Mul) ] in
  let body =
    [
      I64_const 1000L; Local_set x0;
      I64_const 200000L; Local_set x1;
      I64_const 700000L; Local_set x2;
      I64_const 3L; Local_set v0;
      I64_const 5L; Local_set v1;
      I64_const 7L; Local_set v2;
      Block
        [
          Loop
            ([
               Local_get s; I64_const 64L; Relop (I64, Ge_s); Br_if 1;
             ]
            @ vel v0 x0 x1 x2 @ vel v1 x1 x0 x2 @ vel v2 x2 x0 x1
            @ advance x0 v0 @ advance x1 v1 @ advance x2 v2
            @ [ Local_get e ]
            @ sq v0
            @ sq v1 @ [ Binop (I64, Add) ]
            @ sq v2 @ [ Binop (I64, Add) ]
            @ [
                I64_const 5L; Binop (I64, Shr_u); Binop (I64, Add);
                I64_const m; Binop (I64, And); Local_set e;
                Local_get s; I64_const 1L; Binop (I64, Add); Local_set s;
                Br 0;
              ]);
        ];
      Local_get e; I64_const 20L; Binop (I64, Shl);
      Local_get x0; Binop (I64, Or);
      I64_const 20L; Binop (I64, Shl);
      Local_get x1; Binop (I64, Or);
      Local_set r;
      Local_get r;
      Local_get x2; I64_const 10L; Binop (I64, Shl); Binop (I64, Add);
      Local_get v0; I64_const 5L; Binop (I64, Shl); Binop (I64, Add);
      Local_get v1; Binop (I64, Add);
      Local_get v2; I64_const 15L; Binop (I64, Shl); Binop (I64, Add);
    ]
  in
  let ftype = { params = []; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs =
      [|
        {
          ftype;
          locals = [ I64; I64; I64; I64; I64; I64; I64; I64; I64 ];
          body;
        };
      |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l1/nbody-lite";
    layer = "l1";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program
        ~regions:(fun () -> [])
        ~args:[||] ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run" ~args:[] ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:(fun () -> [])
          ()
      @ [
          Harness.to_ebpf_impl ~source:script_source ~entry:"run"
            ~regions:(fun () -> [])
            ~args:[||] ();
        ];
  }
