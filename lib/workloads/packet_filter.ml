(* l2/packet-filter — the paper's canonical hook: a filter over a burst
   of (simulated) CoAP datagrams.

   32 fixed-size 16-byte packets live in a read-only buffer.  A packet is
   accepted when its first header byte carries a non-zero version field
   (bits 6-7) and its second byte a code of 1 (low two bits); the payload
   bytes (2..15) of accepted packets are folded into a 32-bit multiply-
   accumulate checksum.  Result packs (accepted << 32) | checksum, so a
   single diverging byte anywhere fails cross-runtime equivalence. *)

let n_packets = 32
let packet_len = 16
let seed = 0x11

let input () = Harness.synth_bytes ~seed (n_packets * packet_len)

let accepts b0 b1 = (b0 lsr 6) land 3 <> 0 && b1 land 3 = 1

let reference () =
  let data = input () in
  let chk = ref 0 and acc = ref 0 in
  for p = 0 to n_packets - 1 do
    let base = p * packet_len in
    if
      accepts (Char.code (Bytes.get data base)) (Char.code (Bytes.get data (base + 1)))
    then begin
      incr acc;
      for k = 2 to packet_len - 1 do
        chk := ((!chk * 31) + Char.code (Bytes.get data (base + k))) land 0xFFFFFFFF
      done
    end
  done;
  Int64.logor (Int64.shift_left (Int64.of_int !acc) 32) (Int64.of_int !chk)

(* r1 = packet buffer base. *)
let ebpf_source =
  {|
      ; packet filter over 32 x 16-byte pseudo-CoAP packets
      mov   r0, 0              ; chk
      mov   r6, 0              ; accepted
      mov   r2, 0              ; p
      lddw  r9, 0xffffffff
    pkt_loop:
      jsgt  r2, 31, finish
      mov   r3, r2
      lsh   r3, 4
      add   r3, r1             ; packet base
      ldxb  r4, [r3]
      rsh   r4, 6
      and   r4, 3
      jeq   r4, 0, pkt_next    ; version 0: drop
      ldxb  r4, [r3+1]
      and   r4, 3
      jne   r4, 1, pkt_next    ; code != 1: drop
      add   r6, 1
      mov   r5, 2              ; k
    byte_loop:
      jsgt  r5, 15, pkt_next
      mov   r7, r3
      add   r7, r5
      ldxb  r8, [r7]
      mul   r0, 31
      add   r0, r8
      and   r0, r9
      add   r5, 1
      ja    byte_loop
    pkt_next:
      add   r2, 1
      ja    pkt_loop
    finish:
      lsh   r6, 32
      or    r0, r6
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let data_vaddr = 0x3600_0000L

let regions () =
  [
    Femto_vm.Region.make ~name:"packets" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (input ());
  ]

let ebpf_args = [| data_vaddr |]

(* Array flavour: the burst arrives as an array of byte values. *)
let script_source =
  {|
    fn run(data) {
      let chk = 0;
      let acc = 0;
      let p = 0;
      while (p < 32) {
        let base = p * 16;
        if (((data[base] >> 6) & 3) != 0) {
          if ((data[base + 1] & 3) == 1) {
            acc = acc + 1;
            let k = 2;
            while (k < 16) {
              chk = ((chk * 31) + data[base + k]) & 4294967295;
              k = k + 1;
            }
          }
        }
        p = p + 1;
      }
      return (acc << 32) | chk;
    }
  |}

(* Raw-memory flavour for the eBPF backend: same buffer as the rBPF rows. *)
let mem_source =
  {|
    fn run(mem) {
      let chk = 0;
      let acc = 0;
      let p = 0;
      while (p < 32) {
        let base = mem + (p * 16);
        if (((load8(base) >> 6) & 3) != 0) {
          if ((load8(base + 1) & 3) == 1) {
            acc = acc + 1;
            let k = 2;
            while (k < 16) {
              chk = ((chk * 31) + load8(base + k)) & 4294967295;
              k = k + 1;
            }
          }
        }
        p = p + 1;
      }
      return (acc << 32) | chk;
    }
  |}

let script_args () =
  let data = input () in
  [
    Femto_script.Value.Array
      (ref
         (Array.init (Bytes.length data) (fun i ->
              Femto_script.Value.Int (Int64.of_int (Char.code (Bytes.get data i))))));
  ]

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let p = 0 and base = 1 and k = 2 in
  let chk = 3 and acc = 4 in
  let body =
    [
      Block
        [
          Loop
            [
              Local_get p; I32_const 31l; Relop (I32, Gt_s); Br_if 1;
              Local_get p; I32_const 4l; Binop (I32, Shl); Local_set base;
              Block
                [
                  Local_get base; I32_load8_u 0;
                  I32_const 6l; Binop (I32, Shr_u);
                  I32_const 3l; Binop (I32, And);
                  I32_eqz; Br_if 0;
                  Local_get base; I32_load8_u 1;
                  I32_const 3l; Binop (I32, And);
                  I32_const 1l; Relop (I32, Ne); Br_if 0;
                  Local_get acc; I64_const 1L; Binop (I64, Add); Local_set acc;
                  I32_const 2l; Local_set k;
                  Block
                    [
                      Loop
                        [
                          Local_get k; I32_const 15l; Relop (I32, Gt_s);
                          Br_if 1;
                          Local_get chk; I64_const 31L; Binop (I64, Mul);
                          Local_get base; Local_get k; Binop (I32, Add);
                          I32_load8_u 0; I64_extend_i32_u;
                          Binop (I64, Add);
                          I64_const 0xFFFF_FFFFL; Binop (I64, And);
                          Local_set chk;
                          Local_get k; I32_const 1l; Binop (I32, Add);
                          Local_set k;
                          Br 0;
                        ];
                    ];
                ];
              Local_get p; I32_const 1l; Binop (I32, Add); Local_set p;
              Br 0;
            ];
        ];
      Local_get acc; I64_const 32L; Binop (I64, Shl);
      Local_get chk; Binop (I64, Or);
    ]
  in
  let ftype = { params = []; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs = [| { ftype; locals = [ I32; I32; I32; I64; I64 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l2/packet-filter";
    layer = "l2";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program ~regions ~args:ebpf_args ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run" ~input:(input ())
          ~args:[] ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:script_args ()
      @ [
          Harness.to_ebpf_impl ~source:mem_source ~entry:"run" ~regions
            ~args:ebpf_args ();
        ];
  }
