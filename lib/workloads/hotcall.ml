(* Helper-heavy workload: dominated by the VM <-> host call boundary.

   Registers one trivial helper and calls it [calls] times in an
   unrolled straight line, threading a running total through a proven
   [r10-8] spill between calls.  Per-instruction arithmetic is nearly
   free by construction, so what the dispatch tiers race on is call
   marshalling: argument gather, helper resolution (per call site in the
   interpreters, once at compile time in the compiled tier), r0
   write-back, and the post-call stack re-dirtying. *)

let calls = 32
let helper_id = 0x60
let helper_name = "bench_accum"
let helper_cost_cycles = 10

(* acc' = acc + increment; the whole program computes Σ 1..calls. *)
let install helpers =
  Femto_vm.Helper.register helpers ~id:helper_id ~name:helper_name
    ~cost_cycles:helper_cost_cycles ~arity:2 (fun _mem args ->
      Ok (Int64.add args.Femto_vm.Helper.a1 args.Femto_vm.Helper.a2))

(* Fresh registry with only the bench helper: the workload is
   self-contained for VM-level benchmarks and tests. *)
let helpers () =
  let h = Femto_vm.Helper.create () in
  install h;
  h

let reference = Int64.of_int (calls * (calls + 1) / 2)

let ebpf_source =
  let b = Buffer.create (calls * 160) in
  Buffer.add_string b "      ; unrolled helper-call ladder\n";
  Buffer.add_string b "      mov r6, 0            ; acc\n";
  for i = 0 to calls - 1 do
    Buffer.add_string b "      mov r1, r6\n";
    Buffer.add_string b (Printf.sprintf "      mov r2, %d\n" (i + 1));
    Buffer.add_string b (Printf.sprintf "      call %d\n" helper_id);
    (* spill/reload through the stack: provably in-bounds at [r10-8] *)
    Buffer.add_string b "      stxdw [r10-8], r0\n";
    Buffer.add_string b "      ldxdw r6, [r10-8]\n"
  done;
  Buffer.add_string b "      mov r0, r6\n";
  Buffer.add_string b "      exit\n";
  Buffer.contents b

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source
