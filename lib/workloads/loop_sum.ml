(* Loop-based running checksum: the branchy counterpart of {!Dagsum}.

   Computes the same function — sum of 16-bit words plus a sum of running
   prefixes, low 32 bits — but through a genuine back edge, so the
   analyzer classifies it [Has_loops] and the trimmed interpreter stays
   out.  What remains is dispatch cost itself: five of the six loop-body
   instructions are ALU ops feeding a compare-and-branch, which makes
   this the reference workload for the compiled tier's cmp+jump and
   ALU-chain superinstruction fusion. *)

let words = 64

(* Native reference: sum1 = Σ word_i, sum2 = Σ prefix sums; the result is
   the low 32 bits of sum2 (identical to {!Dagsum.reference}, which is
   deliberate — the two workloads cross-check each other). *)
let reference data =
  let n = min words (Bytes.length data / 2) in
  let sum1 = ref 0L and sum2 = ref 0L in
  for i = 0 to n - 1 do
    sum1 := Int64.add !sum1 (Int64.of_int (Bytes.get_uint16_le data (2 * i)));
    sum2 := Int64.add !sum2 !sum1
  done;
  Int64.logand !sum2 0xFFFF_FFFFL

let ebpf_source =
  Printf.sprintf
    {|
      ; looped checksum over %d 16-bit words; r1 = data pointer
      mov   r2, r1            ; cursor
      mov   r3, %d            ; remaining words
      mov   r4, 0             ; sum1
      mov   r5, 0             ; sum2
    word_loop:
      ldxh  r6, [r2]
      add   r4, r6
      add   r5, r4
      add   r2, 2
      sub   r3, 1
      jne   r3, 0, word_loop
      mov32 r0, r5
      exit
  |}
    words words

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let data_vaddr = 0x3200_0000L

(* One read-only region holding the raw words; pass [data_vaddr] in r1. *)
let regions data =
  [
    Femto_vm.Region.make ~name:"loopsum-data" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (Bytes.copy data);
  ]
