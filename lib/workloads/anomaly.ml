(* l2/anomaly — sliding-window anomaly detection over a kv-store history.

   96 historical values (u64 words, each < 2^16) in a read-only buffer.
   A 16-wide running window tracks the local sum; once the window is
   full, each new value's absolute deviation (W*h[i] - wsum) is compared
   against a fixed threshold.  Outliers bump a counter and fold their
   deviation (weighted by position) into a 32-bit checksum.  Result packs
   (count << 32) | checksum. *)

let n_values = 96
let window = 16
let threshold = window * 1200
let seed = 0x33

(* History values derive from 16-bit reads of the synth stream; the VM
   region stores them as little-endian u64 words (the load width the
   script backend shares with the handwritten assembly). *)
let values () =
  let raw = Harness.synth_bytes ~seed (n_values * 2) in
  Array.init n_values (fun i -> Bytes.get_uint16_le raw (i * 2))

let input () =
  let v = values () in
  let b = Bytes.create (n_values * 8) in
  Array.iteri (fun i x -> Bytes.set_int64_le b (i * 8) (Int64.of_int x)) v;
  b

let reference () =
  let h = values () in
  let wsum = ref 0 and count = ref 0 and chk = ref 0 in
  for i = 0 to n_values - 1 do
    wsum := !wsum + h.(i);
    if i >= window then wsum := !wsum - h.(i - window);
    if i >= window - 1 then begin
      let dev = (h.(i) * window) - !wsum in
      let dev = if dev < 0 then -dev else dev in
      if dev > threshold then begin
        incr count;
        chk := (!chk + (dev * (i + 1))) land 0xFFFFFFFF
      end
    end
  done;
  Int64.logor (Int64.shift_left (Int64.of_int !count) 32) (Int64.of_int !chk)

(* r1 = history base (u64 words). *)
let ebpf_source =
  {|
      ; 16-wide sliding-window anomaly detector over 96 u64 values
      mov   r2, 0              ; i
      mov   r3, 0              ; wsum
      mov   r4, 0              ; count
      mov   r5, 0              ; chk
      lddw  r9, 0xffffffff
    an_loop:
      jsgt  r2, 95, an_done
      mov   r6, r2
      lsh   r6, 3
      add   r6, r1
      ldxdw r7, [r6]           ; h[i]
      add   r3, r7
      jslt  r2, 16, no_evict
      mov   r6, r2
      sub   r6, 16
      lsh   r6, 3
      add   r6, r1
      ldxdw r8, [r6]
      sub   r3, r8
    no_evict:
      jslt  r2, 15, an_next    ; window not yet full
      mov   r8, r7
      lsh   r8, 4              ; W * h[i]
      sub   r8, r3             ; dev
      jsge  r8, 0, dev_pos
      neg   r8
    dev_pos:
      jsle  r8, 19200, an_next
      add   r4, 1
      mov   r6, r2
      add   r6, 1
      mul   r6, r8
      add   r5, r6
      and   r5, r9
    an_next:
      add   r2, 1
      ja    an_loop
    an_done:
      mov   r0, r4
      lsh   r0, 32
      or    r0, r5
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let data_vaddr = 0x3800_0000L

let regions () =
  [
    Femto_vm.Region.make ~name:"history" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (input ());
  ]

let ebpf_args = [| data_vaddr |]

let script_source =
  {|
    fn run(h) {
      let wsum = 0;
      let count = 0;
      let chk = 0;
      let i = 0;
      while (i < 96) {
        wsum = wsum + h[i];
        if (i > 15) { wsum = wsum - h[i - 16]; }
        if (i > 14) {
          let dev = (h[i] * 16) - wsum;
          if (dev < 0) { dev = 0 - dev; }
          if (dev > 19200) {
            count = count + 1;
            chk = (chk + (dev * (i + 1))) & 4294967295;
          }
        }
        i = i + 1;
      }
      return (count << 32) | chk;
    }
  |}

let mem_source =
  {|
    fn run(mem) {
      let wsum = 0;
      let count = 0;
      let chk = 0;
      let i = 0;
      while (i < 96) {
        wsum = wsum + load64(mem + (i * 8));
        if (i > 15) { wsum = wsum - load64(mem + ((i - 16) * 8)); }
        if (i > 14) {
          let dev = (load64(mem + (i * 8)) * 16) - wsum;
          if (dev < 0) { dev = 0 - dev; }
          if (dev > 19200) {
            count = count + 1;
            chk = (chk + (dev * (i + 1))) & 4294967295;
          }
        }
        i = i + 1;
      }
      return (count << 32) | chk;
    }
  |}

let script_args () =
  [
    Femto_script.Value.Array
      (ref
         (Array.map
            (fun x -> Femto_script.Value.Int (Int64.of_int x))
            (values ())));
  ]

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let i = 0 in
  let wsum = 1 and count = 2 and chk = 3 and h = 4 and dev = 5 in
  let body =
    [
      Block
        [
          Loop
            [
              Local_get i; I32_const 95l; Relop (I32, Gt_s); Br_if 1;
              Local_get i; I32_const 3l; Binop (I32, Shl); I64_load 0;
              Local_set h;
              Local_get wsum; Local_get h; Binop (I64, Add); Local_set wsum;
              Local_get i; I32_const 16l; Relop (I32, Ge_s);
              If
                ( [
                    Local_get wsum;
                    Local_get i; I32_const 16l; Binop (I32, Sub);
                    I32_const 3l; Binop (I32, Shl); I64_load 0;
                    Binop (I64, Sub); Local_set wsum;
                  ],
                  [] );
              Local_get i; I32_const 15l; Relop (I32, Ge_s);
              If
                ( [
                    Local_get h; I64_const 4L; Binop (I64, Shl);
                    Local_get wsum; Binop (I64, Sub); Local_set dev;
                    Local_get dev; I64_const 0L; Relop (I64, Lt_s);
                    If
                      ( [
                          I64_const 0L; Local_get dev; Binop (I64, Sub);
                          Local_set dev;
                        ],
                        [] );
                    Local_get dev; I64_const 19200L; Relop (I64, Gt_s);
                    If
                      ( [
                          Local_get count; I64_const 1L; Binop (I64, Add);
                          Local_set count;
                          Local_get chk; Local_get dev;
                          Local_get i; I32_const 1l; Binop (I32, Add);
                          I64_extend_i32_u; Binop (I64, Mul);
                          Binop (I64, Add);
                          I64_const 0xFFFF_FFFFL; Binop (I64, And);
                          Local_set chk;
                        ],
                        [] );
                  ],
                  [] );
              Local_get i; I32_const 1l; Binop (I32, Add); Local_set i;
              Br 0;
            ];
        ];
      Local_get count; I64_const 32L; Binop (I64, Shl);
      Local_get chk; Binop (I64, Or);
    ]
  in
  let ftype = { params = []; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs =
      [| { ftype; locals = [ I32; I64; I64; I64; I64; I64 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l2/anomaly";
    layer = "l2";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program ~regions ~args:ebpf_args ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run" ~input:(input ())
          ~args:[] ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:script_args ()
      @ [
          Harness.to_ebpf_impl ~source:mem_source ~entry:"run" ~regions
            ~args:ebpf_args ();
        ];
  }
