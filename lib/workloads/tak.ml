(* l1/tak — the call-heavy kernel (Takeuchi function, tak(9,5,2)).

   The script and wasm runtimes express it with genuine recursion (497
   calls, depth 9), so the row measures call-frame cost.  The eBPF ISA
   has no user-function calls, so the rBPF expression is the to_ebpf
   compilation of an explicit-stack driver: recursion becomes a frame
   machine over a read-write scratch region — the same program serves
   the rBPF tier rows and the script/to-ebpf row, which is exactly the
   honest statement of what "tak on rBPF" costs. *)

let x0 = 9L
let y0 = 5L
let z0 = 2L

let rec tak x y z =
  if Int64.compare y x < 0 then
    tak
      (tak (Int64.sub x 1L) y z)
      (tak (Int64.sub y 1L) z x)
      (tak (Int64.sub z 1L) x y)
  else z

let reference () = tak x0 y0 z0

(* Recursive MiniScript for the tree and stack profiles. *)
let script_source =
  {|
    fn tak(x, y, z) {
      if (y < x) {
        return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
      }
      return z;
    }
  |}

(* Explicit-stack driver for the eBPF backend.  Frame layout (48 B):
   [+0]=x [+8]=y [+16]=z [+24]=stage [+32]=t1 [+40]=t2.  Stages resume a
   frame after each of the three inner calls; stage 3 tail-calls
   tak(t1, t2, ret) by overwriting the frame in place. *)
let stack_source =
  {|
    fn run(mem, x0, y0, z0) {
      let sp = mem;
      store64(sp, x0);
      store64(sp + 8, y0);
      store64(sp + 16, z0);
      store64(sp + 24, 0);
      sp = sp + 48;
      let ret = 0;
      while (sp > mem) {
        sp = sp - 48;
        let x = load64(sp);
        let y = load64(sp + 8);
        let z = load64(sp + 16);
        let stage = load64(sp + 24);
        if (stage == 0) {
          if (y < x) {
            store64(sp + 24, 1);
            sp = sp + 48;
            store64(sp, x - 1);
            store64(sp + 8, y);
            store64(sp + 16, z);
            store64(sp + 24, 0);
            sp = sp + 48;
          } else {
            ret = z;
          }
        } else {
          if (stage == 1) {
            store64(sp + 24, 2);
            store64(sp + 32, ret);
            sp = sp + 48;
            store64(sp, y - 1);
            store64(sp + 8, z);
            store64(sp + 16, x);
            store64(sp + 24, 0);
            sp = sp + 48;
          } else {
            if (stage == 2) {
              store64(sp + 24, 3);
              store64(sp + 40, ret);
              sp = sp + 48;
              store64(sp, z - 1);
              store64(sp + 8, x);
              store64(sp + 16, y);
              store64(sp + 24, 0);
              sp = sp + 48;
            } else {
              store64(sp, load64(sp + 32));
              store64(sp + 8, load64(sp + 40));
              store64(sp + 16, ret);
              store64(sp + 24, 0);
              sp = sp + 48;
            }
          }
        }
      }
      return ret;
    }
  |}

let ebpf_program () =
  Femto_script.To_ebpf.compile_function stack_source "run"

(* Scratch for the frame machine: 512 frames is ~17x the observed peak
   depth for these arguments. *)
let stack_vaddr = 0x3400_0000L
let stack_bytes = 512 * 48

let regions () =
  [
    Femto_vm.Region.make ~name:"tak-stack" ~vaddr:stack_vaddr
      ~perm:Femto_vm.Region.Read_write (Bytes.make stack_bytes '\000');
  ]

let ebpf_args = [| stack_vaddr; x0; y0; z0 |]

let wasm_module =
  let open Femto_wasm_mini.Ast in
  let x = 0 and y = 1 and z = 2 in
  let body =
    [
      Local_get y; Local_get x; Relop (I64, Lt_s);
      If
        ( [
            Local_get x; I64_const 1L; Binop (I64, Sub);
            Local_get y; Local_get z; Call 0;
            Local_get y; I64_const 1L; Binop (I64, Sub);
            Local_get z; Local_get x; Call 0;
            Local_get z; I64_const 1L; Binop (I64, Sub);
            Local_get x; Local_get y; Call 0;
            Call 0;
          ],
          [ Local_get z ] );
    ]
  in
  let ftype = { params = [ I64; I64; I64 ]; results = [ I64 ] } in
  {
    types = [| ftype |];
    funcs = [| { ftype; locals = []; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "tak"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l1/tak";
    layer = "l1";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program ~regions ~args:ebpf_args ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"tak"
          ~args:
            [
              Femto_wasm_mini.Ast.V_i64 x0;
              Femto_wasm_mini.Ast.V_i64 y0;
              Femto_wasm_mini.Ast.V_i64 z0;
            ]
          ()
      @ Harness.script_impls ~source:script_source ~entry:"tak"
          ~args:(fun () ->
            [
              Femto_script.Value.Int x0;
              Femto_script.Value.Int y0;
              Femto_script.Value.Int z0;
            ])
          ()
      @ [
          Harness.to_ebpf_impl ~source:stack_source ~entry:"run" ~regions
            ~args:ebpf_args ();
        ];
  }
