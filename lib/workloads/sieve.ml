(* l1/sieve — Eratosthenes over the first 512 naturals, the corpus's
   memory-stride kernel.

   The rBPF and to_ebpf expressions keep one 64-bit flag word per number
   in a 4 KiB read-write region (the only store width the script backend
   emits); wasm uses one byte per number in linear memory; the script
   profiles use a growable array.  Flags are only ever set to 1, so a
   single instance stays idempotent across repeated timed runs.  Result:
   sum of all primes below [n]. *)

let n = 512

let reference () =
  let flags = Array.make n false in
  let i = ref 2 in
  while !i * !i < n do
    if not flags.(!i) then begin
      let j = ref (!i * !i) in
      while !j < n do
        flags.(!j) <- true;
        j := !j + !i
      done
    end;
    incr i
  done;
  let sum = ref 0 in
  for k = 2 to n - 1 do
    if not flags.(k) then sum := !sum + k
  done;
  Int64.of_int !sum

(* r1 = base of 512 zeroed u64 flag words; result in r0. *)
let ebpf_source =
  {|
      ; sieve of eratosthenes, one u64 flag word per number
      mov   r2, 2              ; i
    mark_outer:
      mov   r3, r2
      mul   r3, r2             ; i*i
      jsgt  r3, 511, sum_init
      mov   r4, r2
      lsh   r4, 3
      add   r4, r1
      ldxdw r5, [r4]
      jne   r5, 0, mark_next   ; already composite
      mov   r6, r3             ; j = i*i
    mark_inner:
      jsgt  r6, 511, mark_next
      mov   r4, r6
      lsh   r4, 3
      add   r4, r1
      mov   r5, 1
      stxdw [r4], r5
      add   r6, r2
      ja    mark_inner
    mark_next:
      add   r2, 1
      ja    mark_outer
    sum_init:
      mov   r0, 0
      mov   r2, 2
    sum_loop:
      jsgt  r2, 511, done
      mov   r4, r2
      lsh   r4, 3
      add   r4, r1
      ldxdw r5, [r4]
      jne   r5, 0, sum_next
      add   r0, r2
    sum_next:
      add   r2, 1
      ja    sum_loop
    done:
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let flags_vaddr = 0x3500_0000L

let regions () =
  [
    Femto_vm.Region.make ~name:"sieve-flags" ~vaddr:flags_vaddr
      ~perm:Femto_vm.Region.Read_write (Bytes.make (n * 8) '\000');
  ]

let ebpf_args = [| flags_vaddr |]

(* Array flavour for the tree/stack profiles. *)
let script_source =
  {|
    fn run() {
      let flags = [];
      let i = 0;
      while (i < 512) {
        push(flags, 0);
        i = i + 1;
      }
      i = 2;
      while (i * i < 512) {
        if (flags[i] == 0) {
          let j = i * i;
          while (j < 512) {
            flags[j] = 1;
            j = j + i;
          }
        }
        i = i + 1;
      }
      let sum = 0;
      i = 2;
      while (i < 512) {
        if (flags[i] == 0) {
          sum = sum + i;
        }
        i = i + 1;
      }
      return sum;
    }
  |}

(* Raw-memory flavour for the eBPF backend: same u64-word layout as the
   handwritten assembly above. *)
let mem_source =
  {|
    fn run(mem) {
      let i = 2;
      while (i * i < 512) {
        if (load64(mem + 8 * i) == 0) {
          let j = i * i;
          while (j < 512) {
            store64(mem + 8 * j, 1);
            j = j + i;
          }
        }
        i = i + 1;
      }
      let sum = 0;
      i = 2;
      while (i < 512) {
        if (load64(mem + 8 * i) == 0) {
          sum = sum + i;
        }
        i = i + 1;
      }
      return sum;
    }
  |}

(* wasm keeps byte flags at linear-memory addresses [0, n). *)
let wasm_module =
  let open Femto_wasm_mini.Ast in
  let i = 0 and j = 1 and sum = 2 in
  let body =
    [
      I32_const 2l; Local_set i;
      Block
        [
          Loop
            [
              Local_get i; Local_get i; Binop (I32, Mul);
              I32_const 511l; Relop (I32, Gt_s); Br_if 1;
              Block
                [
                  Local_get i; I32_load8_u 0;
                  I32_const 0l; Relop (I32, Ne); Br_if 0;
                  Local_get i; Local_get i; Binop (I32, Mul); Local_set j;
                  Block
                    [
                      Loop
                        [
                          Local_get j; I32_const 511l; Relop (I32, Gt_s);
                          Br_if 1;
                          Local_get j; I32_const 1l; I32_store8 0;
                          Local_get j; Local_get i; Binop (I32, Add);
                          Local_set j;
                          Br 0;
                        ];
                    ];
                ];
              Local_get i; I32_const 1l; Binop (I32, Add); Local_set i;
              Br 0;
            ];
        ];
      I32_const 0l; Local_set sum;
      I32_const 2l; Local_set i;
      Block
        [
          Loop
            [
              Local_get i; I32_const 511l; Relop (I32, Gt_s); Br_if 1;
              Block
                [
                  Local_get i; I32_load8_u 0;
                  I32_const 0l; Relop (I32, Ne); Br_if 0;
                  Local_get sum; Local_get i; Binop (I32, Add); Local_set sum;
                ];
              Local_get i; I32_const 1l; Binop (I32, Add); Local_set i;
              Br 0;
            ];
        ];
      Local_get sum;
    ]
  in
  let ftype = { params = []; results = [ I32 ] } in
  {
    types = [| ftype |];
    funcs = [| { ftype; locals = [ I32; I32; I32 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { name = "run"; func_index = 0 } ];
  }

let workload () =
  {
    Harness.wname = "l1/sieve";
    layer = "l1";
    expected = reference ();
    impls =
      Harness.rbpf_impls ~program:ebpf_program ~regions ~args:ebpf_args ()
      @ Harness.wasm_impls ~modul:wasm_module ~entry:"run" ~args:[] ()
      @ Harness.script_impls ~source:script_source ~entry:"run"
          ~args:(fun () -> [])
          ()
      @ [
          Harness.to_ebpf_impl ~source:mem_source ~entry:"run" ~regions
            ~args:ebpf_args ();
        ];
  }
