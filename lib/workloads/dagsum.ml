(* Fully unrolled checksum: the analyzer's fast-path showcase workload.

   Same flavour of computation as {!Fletcher} (sum of 16-bit words plus a
   sum of running prefixes) but with the word loop unrolled at assembly
   time, so the control-flow graph is a straight line: no back edges, a
   [Dag] termination classification, and every stack access at a constant
   r10-relative offset the abstract interpreter can prove in-bounds.
   Each round-trip through [r10-8] is deliberate — it gives the analyzer
   stack accesses to prove and the trimmed interpreter direct accesses to
   win on, mimicking register spills a compiler would emit. *)

let words = 64

(* Native reference: sum1 = Σ word_i, sum2 = Σ prefix sums; the result is
   the low 32 bits of sum2. *)
let reference data =
  let n = min words (Bytes.length data / 2) in
  let sum1 = ref 0L and sum2 = ref 0L in
  for i = 0 to n - 1 do
    sum1 := Int64.add !sum1 (Int64.of_int (Bytes.get_uint16_le data (2 * i)));
    sum2 := Int64.add !sum2 !sum1
  done;
  Int64.logand !sum2 0xFFFF_FFFFL

(* The unrolled eBPF source: r1 points straight at the data words. *)
let ebpf_source =
  let b = Buffer.create (words * 160) in
  Buffer.add_string b "      ; unrolled dag checksum over 16-bit words\n";
  Buffer.add_string b "      mov r5, 0            ; sum1\n";
  Buffer.add_string b "      mov r6, 0            ; sum2\n";
  for i = 0 to words - 1 do
    Buffer.add_string b (Printf.sprintf "      ldxh r4, [r1+%d]\n" (2 * i));
    Buffer.add_string b "      add r5, r4\n";
    (* spill/reload through the stack: provably in-bounds at [r10-8] *)
    Buffer.add_string b "      stxdw [r10-8], r5\n";
    Buffer.add_string b "      ldxdw r7, [r10-8]\n";
    Buffer.add_string b "      add r6, r7\n"
  done;
  Buffer.add_string b "      mov32 r0, r6\n";
  Buffer.add_string b "      exit\n";
  Buffer.contents b

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

let data_vaddr = 0x3100_0000L

(* One read-only region holding the raw words; pass [data_vaddr] in r1. *)
let regions data =
  [
    Femto_vm.Region.make ~name:"dagsum-data" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (Bytes.copy data);
  ]
