(* Slot manager: persistent container images on the flash simulator.

   The flash is divided into fixed-size slots, each holding one container
   image behind a header (magic, install sequence number, hook UUID,
   length, SHA-256 digest).  SUIT installs write a slot; on (simulated)
   reboot the hosting engine re-attaches every valid slot — the
   persistence the paper's devices get from storing applications between
   invocations.

   Header layout (little endian):
     0-3   magic "FCS1"
     4-11  install sequence number (u64)
     12-15 payload length (u32)
     16-51 hook UUID (36 bytes, zero padded)
     52-83 SHA-256 of the payload
   Payload follows at offset 84. *)

module Crypto = Femto_crypto.Crypto

let magic = "FCS1"
let header_size = 84
let uuid_size = 36

type t = { flash : Flash.t; slot_size : int; count : int }

type slot_error =
  | Flash_error of Flash.error
  | No_such_slot of int
  | Image_too_large of { bytes : int; capacity : int }
  | Uuid_too_long of string
  | Empty_slot of int
  | Corrupt_slot of { slot : int; reason : string }

let error_to_string = function
  | Flash_error e -> Flash.error_to_string e
  | No_such_slot n -> Printf.sprintf "no slot %d" n
  | Image_too_large { bytes; capacity } ->
      Printf.sprintf "image of %d B exceeds slot capacity %d B" bytes capacity
  | Uuid_too_long uuid -> Printf.sprintf "uuid %S longer than %d" uuid uuid_size
  | Empty_slot n -> Printf.sprintf "slot %d is empty" n
  | Corrupt_slot { slot; reason } -> Printf.sprintf "slot %d corrupt: %s" slot reason

(* Slots are page-aligned so each can be erased independently. *)
let create ~flash ~count =
  let page = Flash.page_size flash in
  let raw = Flash.size flash / count in
  let slot_size = raw / page * page in
  if slot_size < header_size + page then invalid_arg "Slots.create: flash too small";
  { flash; slot_size; count }

let count t = t.count
let capacity t = t.slot_size - header_size

let offset t slot = slot * t.slot_size

let check_slot t slot = if slot < 0 || slot >= t.count then Error (No_such_slot slot) else Ok ()

type image = { sequence : int64; hook_uuid : string; payload : string }

let ( let* ) = Result.bind

let build_header ~sequence ~hook_uuid ~payload_len ~digest =
  let header = Bytes.make header_size '\x00' in
  Bytes.blit_string magic 0 header 0 4;
  Bytes.set_int64_le header 4 sequence;
  Bytes.set_int32_le header 12 (Int32.of_int payload_len);
  Bytes.blit_string hook_uuid 0 header 16 (String.length hook_uuid);
  Bytes.blit_string digest 0 header 52 32;
  header

(* [store t ~slot image] erases the slot then programs header + payload.
   [digest], when the caller already holds the payload's SHA-256 (e.g.
   computed while it streamed in), skips the re-hash here. *)
let store ?digest t ~slot image =
  let* () = check_slot t slot in
  let payload_len = String.length image.payload in
  if payload_len > capacity t then
    Error (Image_too_large { bytes = payload_len; capacity = capacity t })
  else if String.length image.hook_uuid > uuid_size then
    Error (Uuid_too_long image.hook_uuid)
  else begin
    let* () =
      Result.map_error
        (fun e -> Flash_error e)
        (Flash.erase_range t.flash ~offset:(offset t slot) ~length:t.slot_size)
    in
    let digest =
      match digest with Some d -> d | None -> Crypto.sha256 image.payload
    in
    let header =
      build_header ~sequence:image.sequence ~hook_uuid:image.hook_uuid
        ~payload_len ~digest
    in
    let blob = Bytes.cat header (Bytes.of_string image.payload) in
    Result.map_error
      (fun e -> Flash_error e)
      (Flash.write t.flash ~offset:(offset t slot) blob)
  end

(* --- streaming installs ---

   [begin_stream] erases the slot up front; [stream_write] programs each
   chunk into the payload area as it arrives (so flash work overlaps the
   block-wise transfer); [finish_stream] programs the header last.  Until
   the header lands the slot has no magic and scans as empty, so an
   aborted or rejected transfer needs no cleanup — write-the-header-last
   is the commit point. *)

type stream = { owner : t; slot : int; mutable written : int }

let begin_stream t ~slot =
  let* () = check_slot t slot in
  let* () =
    Result.map_error
      (fun e -> Flash_error e)
      (Flash.erase_range t.flash ~offset:(offset t slot) ~length:t.slot_size)
  in
  Ok { owner = t; slot; written = 0 }

let stream_written stream = stream.written

let stream_write stream chunk =
  let t = stream.owner in
  let len = String.length chunk in
  if stream.written + len > capacity t then
    Error (Image_too_large { bytes = stream.written + len; capacity = capacity t })
  else begin
    let* () =
      Result.map_error
        (fun e -> Flash_error e)
        (Flash.write t.flash
           ~offset:(offset t stream.slot + header_size + stream.written)
           (Bytes.of_string chunk))
    in
    stream.written <- stream.written + len;
    Ok ()
  end

let finish_stream stream ~sequence ~hook_uuid ~digest =
  let t = stream.owner in
  if String.length hook_uuid > uuid_size then Error (Uuid_too_long hook_uuid)
  else if String.length digest <> 32 then
    Error (Corrupt_slot { slot = stream.slot; reason = "bad digest length" })
  else
    Result.map_error
      (fun e -> Flash_error e)
      (Flash.write t.flash ~offset:(offset t stream.slot)
         (build_header ~sequence ~hook_uuid ~payload_len:stream.written ~digest))

(* [load t ~slot] reads and integrity-checks one slot. *)
let load t ~slot =
  let* () = check_slot t slot in
  let* header =
    Result.map_error
      (fun e -> Flash_error e)
      (Flash.read t.flash ~offset:(offset t slot) ~length:header_size)
  in
  if Bytes.sub_string header 0 4 <> magic then Error (Empty_slot slot)
  else begin
    let sequence = Bytes.get_int64_le header 4 in
    let payload_len = Int32.to_int (Bytes.get_int32_le header 12) in
    if payload_len < 0 || payload_len > capacity t then
      Error (Corrupt_slot { slot; reason = "bad length field" })
    else begin
      let hook_uuid =
        let raw = Bytes.sub_string header 16 uuid_size in
        match String.index_opt raw '\x00' with
        | Some stop -> String.sub raw 0 stop
        | None -> raw
      in
      let digest = Bytes.sub_string header 52 32 in
      let* payload =
        Result.map_error
          (fun e -> Flash_error e)
          (Flash.read t.flash ~offset:(offset t slot + header_size)
             ~length:payload_len)
      in
      let payload = Bytes.to_string payload in
      if not (Crypto.constant_time_equal (Crypto.sha256 payload) digest) then
        Error (Corrupt_slot { slot; reason = "payload digest mismatch" })
      else Ok { sequence; hook_uuid; payload }
    end
  end

let erase t ~slot =
  let* () = check_slot t slot in
  Result.map_error
    (fun e -> Flash_error e)
    (Flash.erase_range t.flash ~offset:(offset t slot) ~length:t.slot_size)

(* [scan t] enumerates the valid images, as a bootloader would. *)
let scan t =
  List.filter_map
    (fun slot ->
      match load t ~slot with Ok image -> Some (slot, image) | Error _ -> None)
    (List.init t.count Fun.id)

(* Pick the slot to overwrite for a new install: an empty one, else the
   lowest-sequence (oldest) image. *)
let victim_slot t =
  let rec scan_slots slot oldest =
    if slot >= t.count then
      match oldest with Some (slot, _) -> slot | None -> 0
    else
      match load t ~slot with
      | Error (Empty_slot _) -> slot
      | Ok image -> (
          match oldest with
          | Some (_, seq) when Int64.compare seq image.sequence <= 0 ->
              scan_slots (slot + 1) oldest
          | _ -> scan_slots (slot + 1) (Some (slot, image.sequence)))
      | Error _ -> slot (* corrupt: reuse it *)
  in
  scan_slots 0 None
