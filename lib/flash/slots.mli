(** Slot manager: persistent container images on the flash simulator.

    The flash is divided into page-aligned, fixed-size slots, each holding
    one container image behind a header carrying the install sequence
    number, the hook UUID (the SUIT storage location) and a SHA-256
    digest.  On boot the hosting engine re-attaches every valid slot. *)

type t

type slot_error =
  | Flash_error of Flash.error
  | No_such_slot of int
  | Image_too_large of { bytes : int; capacity : int }
  | Uuid_too_long of string
  | Empty_slot of int
  | Corrupt_slot of { slot : int; reason : string }

val error_to_string : slot_error -> string

val create : flash:Flash.t -> count:int -> t
(** Partition [flash] into [count] slots; raises [Invalid_argument] when
    the flash is too small. *)

val count : t -> int

val capacity : t -> int
(** Payload bytes one slot can hold. *)

type image = { sequence : int64; hook_uuid : string; payload : string }

val store : ?digest:string -> t -> slot:int -> image -> (unit, slot_error) result
(** Erase the slot, then program header + payload.  [digest], when the
    caller already holds the payload's SHA-256 (e.g. streamed in), skips
    the re-hash. *)

(** {2 Streaming installs}

    [begin_stream] erases the slot; [stream_write] programs each chunk
    into the payload area as it arrives; [finish_stream] programs the
    header last, which is the commit point — until then the slot scans
    as empty, so aborted transfers need no cleanup. *)

type stream

val begin_stream : t -> slot:int -> (stream, slot_error) result
val stream_write : stream -> string -> (unit, slot_error) result

val stream_written : stream -> int
(** Payload bytes programmed so far. *)

val finish_stream :
  stream -> sequence:int64 -> hook_uuid:string -> digest:string ->
  (unit, slot_error) result

val load : t -> slot:int -> (image, slot_error) result
(** Read and integrity-check one slot (magic + digest). *)

val erase : t -> slot:int -> (unit, slot_error) result

val scan : t -> (int * image) list
(** Every valid image, as a bootloader sees them. *)

val victim_slot : t -> int
(** The slot a new install should overwrite: an empty one, else the
    oldest (lowest sequence number). *)
