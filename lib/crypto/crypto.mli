(** Crypto utilities for the secure-update path.

    Note: COSE envelopes in this repository authenticate with HMAC-SHA256
    in place of the paper's ed25519 (see DESIGN.md, substitutions); the
    protocol behaviour — detached-payload signing, verification, tamper
    rejection — is unchanged. *)

module Sha256 = Sha256

val sha256 : string -> string
(** 32-byte binary SHA-256 digest. *)

val sha256_bytes : bytes -> string

val hmac_sha256 : key:string -> string -> string
(** RFC 2104 HMAC-SHA256; 32-byte binary MAC. *)

type hmac_key
(** Per-key precomputed pad midstates.  Immutable once built — safe to
    share across domains; each MAC clones the midstate, so repeated
    verification under one key skips the two key-pad compressions. *)

val hmac_key : string -> hmac_key
val hmac_sha256_with : hmac_key -> string -> string

val constant_time_equal : string -> string -> bool
(** Equality that scans both strings fully regardless of where they
    differ. *)

val to_hex : string -> string
val of_hex : string -> string
(** Raises [Invalid_argument] on odd length or non-hex digits. *)
