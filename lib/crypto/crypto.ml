(* Crypto utilities for the secure-update path: HMAC-SHA256 (RFC 2104),
   constant-time comparison, hex encoding.

   Note on the signature substitution: the paper's SUIT profile uses
   ed25519; no crypto library is available in this sealed environment and
   a from-scratch Curve25519 is out of scope, so COSE_Sign1 envelopes here
   authenticate with HMAC-SHA256 instead (documented in DESIGN.md).  The
   protocol behaviour the evaluation exercises — detached-payload signing,
   verification, tamper rejection — is identical. *)

module Sha256 = Sha256

let sha256 = Sha256.digest_string
let sha256_bytes = Sha256.digest_bytes

(* Precomputed HMAC midstates: the inner/outer key pads are each exactly
   one SHA-256 block, so their compressions can be done once per key.
   Each MAC then clones the midstate and feeds only the message — two
   block compressions and two pad constructions cheaper per call, which
   is most of the cost of authenticating a small manifest.  The contexts
   are never mutated after [hmac_key]; cloning is safe from any domain. *)
type hmac_key = { inner : Sha256.ctx; outer : Sha256.ctx }

let hmac_key secret =
  let block_size = 64 in
  let secret =
    if String.length secret > block_size then Sha256.digest_string secret
    else secret
  in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length secret then Char.code secret.[i] else 0 in
        Char.chr (k lxor c))
  in
  let inner = Sha256.init () in
  Sha256.update_string inner (pad 0x36);
  let outer = Sha256.init () in
  Sha256.update_string outer (pad 0x5c);
  { inner; outer }

let hmac_sha256_with hk message =
  let ctx = Sha256.copy hk.inner in
  Sha256.update_string ctx message;
  let inner_digest = Sha256.finalize ctx in
  let ctx = Sha256.copy hk.outer in
  Sha256.update_string ctx inner_digest;
  Sha256.finalize ctx

let hmac_sha256 ~key message = hmac_sha256_with (hmac_key key) message

(* Constant-time equality: scans both strings fully regardless of where
   they differ. *)
let constant_time_equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let to_hex s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex hex =
  if String.length hex mod 2 <> 0 then invalid_arg "Crypto.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Crypto.of_hex: bad digit"
  in
  String.init
    (String.length hex / 2)
    (fun i -> Char.chr ((digit hex.[2 * i] lsl 4) lor digit hex.[(2 * i) + 1]))
