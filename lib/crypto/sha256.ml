(* SHA-256 (FIPS 180-4), implemented from scratch; verified against the
   NIST test vectors in the test suite.

   The compression function runs on untagged native ints (word values
   masked to 32 bits) rather than boxed [Int32.t]: on a 64-bit host every
   Int32 operation allocates, which made hashing the dominant cost of the
   secure-update pipeline.  The message schedule lives in a scratch array
   inside the context, so steady-state hashing allocates nothing. *)

let () =
  (* the 32-bit arithmetic below needs the 63-bit native int *)
  if Sys.int_size < 63 then
    failwith "Sha256: requires a 64-bit platform"

let mask = 0xFFFF_FFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
    0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
    0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
    0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
    0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
    0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
    0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
    0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
    0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
    0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
    0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 words of chaining state *)
  w : int array; (* 64-word message schedule, reused every block *)
  block : Bytes.t; (* 64-byte input block being filled *)
  mutable block_len : int;
  mutable total_len : int64;
}

(* Snapshot a context so a precomputed midstate (e.g. an HMAC key pad)
   can be extended many times.  The schedule array is pure scratch — a
   fresh one is fine. *)
let copy ctx =
  {
    h = Array.copy ctx.h;
    w = Array.make 64 0;
    block = Bytes.copy ctx.block;
    block_len = ctx.block_len;
    total_len = ctx.total_len;
  }

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    w = Array.make 64 0;
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0L;
  }

(* Rotate a 32-bit value held in a native int.  The left shift may spill
   past bit 62 and wrap; only the low 32 bits survive the mask, which is
   exactly the rotation result. *)
let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* Precondition: [offset + 64 <= Bytes.length block] — callers only ever
   hand in full blocks. *)
let process_block ctx block offset =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = offset + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get block base) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (base + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (base + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (base + 3)))
  done;
  (* [t] stays within [16, 63], so every schedule index is in bounds *)
  for t = 16 to 63 do
    let x = Array.unsafe_get w (t - 15) in
    let s0 = rotr x 7 lxor rotr x 18 lxor (x lsr 3) in
    let y = Array.unsafe_get w (t - 2) in
    let s1 = rotr y 17 lxor rotr y 19 lxor (y lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      land mask)
  done;
  (* Tail-recursive so a..h live in registers across rounds; the ref-cell
     version paid 16 memory round-trips per round for the state rotation. *)
  let hv = ctx.h in
  let rec rounds t a b c d e f g h =
    if t = 64 then begin
      hv.(0) <- (hv.(0) + a) land mask;
      hv.(1) <- (hv.(1) + b) land mask;
      hv.(2) <- (hv.(2) + c) land mask;
      hv.(3) <- (hv.(3) + d) land mask;
      hv.(4) <- (hv.(4) + e) land mask;
      hv.(5) <- (hv.(5) + f) land mask;
      hv.(6) <- (hv.(6) + g) land mask;
      hv.(7) <- (hv.(7) + h) land mask
    end
    else begin
      let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
      let ch = e land f lxor (lnot e land g) in
      let t1 =
        (h + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask
      in
      let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
      let maj = a land b lxor (a land c) lxor (b land c) in
      let t2 = (s0 + maj) land mask in
      rounds (t + 1) ((t1 + t2) land mask) a b c ((d + t1) land mask) e f g
    end
  in
  rounds 0 hv.(0) hv.(1) hv.(2) hv.(3) hv.(4) hv.(5) hv.(6) hv.(7)

let update ctx data offset length =
  if offset < 0 || length < 0 || offset + length > Bytes.length data then
    invalid_arg "Sha256.update";
  ctx.total_len <- Int64.add ctx.total_len (Int64.of_int length);
  let pos = ref offset and remaining = ref length in
  (* top up a partial block first *)
  if ctx.block_len > 0 then begin
    let need = 64 - ctx.block_len in
    let chunk = min need !remaining in
    Bytes.blit data !pos ctx.block ctx.block_len chunk;
    ctx.block_len <- ctx.block_len + chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    if ctx.block_len = 64 then begin
      process_block ctx ctx.block 0;
      ctx.block_len <- 0
    end
  end;
  while !remaining >= 64 do
    process_block ctx data !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit data !pos ctx.block ctx.block_len !remaining;
    ctx.block_len <- ctx.block_len + !remaining
  end

(* Feed a window of a string without copying it.  [Bytes.unsafe_of_string]
   is sound here because [update] only ever reads from [data]. *)
let update_substring ctx s offset length =
  if offset < 0 || length < 0 || offset + length > String.length s then
    invalid_arg "Sha256.update_substring";
  update ctx (Bytes.unsafe_of_string s) offset length

let update_string ctx s = update_substring ctx s 0 (String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total_len 8L in
  (* append 0x80, pad with zeros to 56 mod 64, then the 64-bit length *)
  let pad_len =
    let used = (ctx.block_len + 1) mod 64 in
    if used <= 56 then 56 - used else 120 - used
  in
  let trailer = Bytes.create (1 + pad_len + 8) in
  Bytes.fill trailer 0 (Bytes.length trailer) '\000';
  Bytes.set trailer 0 '\x80';
  Bytes.set_int64_be trailer (1 + pad_len) bit_len;
  (* bypass total_len accounting for the padding *)
  let saved = ctx.total_len in
  update ctx trailer 0 (Bytes.length trailer);
  ctx.total_len <- saved;
  let digest = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be digest (4 * i) (Int32.of_int ctx.h.(i))
  done;
  Bytes.to_string digest

let digest_bytes data =
  let ctx = init () in
  update ctx data 0 (Bytes.length data);
  finalize ctx

let digest_string s =
  let ctx = init () in
  update_string ctx s;
  finalize ctx
