(** SHA-256 (FIPS 180-4), implemented from scratch; verified against the
    NIST test vectors in the test suite. *)

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Snapshot of a context; extending the copy leaves the original
    untouched.  Lets HMAC keep per-key pad midstates and clone them per
    message instead of re-hashing the pads. *)

val update : ctx -> bytes -> int -> int -> unit

val update_substring : ctx -> string -> int -> int -> unit
(** [update_substring ctx s off len] feeds a window of [s] without
    copying it — the streaming-digest path of the update pipeline hashes
    CoAP block payloads in place. *)

val update_string : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte binary digest.  The context must not be reused afterwards. *)

val digest_bytes : bytes -> string
val digest_string : string -> string
