(* Optimization passes over the superblock IR.

   Every rewrite is *observation-preserving* against the decoded
   interpreter: replaced steps keep their [weight]/[cost] so batched
   accounting stays bit-exact, memory writes are never dropped (the
   stack and region contents are test-visible), and a register write is
   only dead when no fault-capable step — a potential register-file
   observation point — sits between it and the overwrite.

   The pipeline (each stage independently toggleable, for the
   EXPERIMENTS ablation):

   - [canon]       lddw/ALU-chain canonicalization: sub-imm to add-imm,
                   adjacent 64-bit add-imm merging, mov-imm to [Movk].
   - [const_fold]  forward constant propagation driven by the analyzer's
                   fixpoint having already proven the program's shape:
                   folds ALU/swap on known constants through the shared
                   [Interp] semantics (so folds agree bit-for-bit),
                   rewrites known-register operands to immediates, folds
                   statically-decided conditional branches (a
                   taken-always branch truncates its block; an
                   untaken-always branch becomes an accounted [Nop]).
   - [dead_elim]   dead register-write elimination: pure writes whose
                   value is overwritten before any read or observation
                   point become accounted [Nop]s.
   - [bounds_elim] bounds-check elision and hoisting: accesses the
                   interval fixpoint proved in-frame drop the allow-list
                   scan entirely (a residual frame-bounds guard
                   contains analyzer bugs); every remaining access is
                   hoisted behind a per-site region inline cache. *)

module Vir = Femto_vm.Ir
module Interp = Femto_vm.Interp
module Obs = Femto_obs.Obs
module Metrics = Femto_obs.Metrics
module Jsonx = Femto_obs.Jsonx

let m_blocks = Obs.counter "analysis.ir.blocks"
let m_steps = Obs.counter "analysis.ir.steps"
let m_folded = Obs.counter "analysis.ir.folded"
let m_eliminated = Obs.counter "analysis.ir.eliminated"
let m_elided = Obs.counter "analysis.ir.checks_elided"
let m_hoisted = Obs.counter "analysis.ir.checks_hoisted"

type config = {
  canon : bool;
  const_fold : bool;
  dead_elim : bool;
  bounds_elim : bool;
}

let all =
  { canon = true; const_fold = true; dead_elim = true; bounds_elim = true }

let none =
  { canon = false; const_fold = false; dead_elim = false; bounds_elim = false }

type pass_stat = { name : string; enabled : bool; rewrites : int }

type report = {
  passes : pass_stat list;
  blocks : int;
  steps_before : int;
  steps_after : int;  (** live (non-[Nop]) steps after the pipeline *)
  folded : int;
  eliminated : int;
  elided : int;
  hoisted : int;
}

(* ------------------------------------------------------------------ *)
(* Helpers.                                                           *)

let live_steps p =
  Vir.count_ops (function Vir.Nop -> false | _ -> true) p

(* Rebuild the per-block aggregates a rewrite may have changed. *)
let refresh (b : Vir.block) =
  let weight =
    Array.fold_left (fun w (s : Vir.step) -> w + s.Vir.weight) 0 b.Vir.steps
    + (match b.Vir.term with
      | Vir.Exit { weight; _ } | Vir.Jump { weight; _ } -> weight
      | Vir.Fall _ | Vir.Halt _ -> 0)
  in
  let branch =
    (match b.Vir.term with Vir.Jump _ -> true | _ -> false)
    || Array.exists
         (fun (s : Vir.step) ->
           match s.Vir.op with Vir.Jcond _ -> true | _ -> false)
         b.Vir.steps
  in
  { b with Vir.weight; branch }

let map_blocks f (p : Vir.program) =
  { p with Vir.blocks = Array.map (fun b -> refresh (f b)) p.Vir.blocks }

(* ------------------------------------------------------------------ *)
(* canon: ALU-chain canonicalization.                                 *)

let canon_block count (b : Vir.block) =
  let steps = Array.copy b.Vir.steps in
  let n = Array.length steps in
  for i = 0 to n - 1 do
    let s = steps.(i) in
    match s.Vir.op with
    (* sub-imm is add of the negation; normal form feeds add-merging *)
    | Vir.Alu { is64 = true; op = Femto_ebpf.Opcode.Sub; dst; src = Vir.Imm v }
      ->
        incr count;
        steps.(i) <-
          {
            s with
            Vir.op =
              Vir.Alu
                {
                  is64 = true;
                  op = Femto_ebpf.Opcode.Add;
                  dst;
                  src = Vir.Imm (Int64.neg v);
                };
          }
    | Vir.Alu { is64 = true; op = Femto_ebpf.Opcode.Mov; dst; src = Vir.Imm v }
      ->
        incr count;
        steps.(i) <- { s with Vir.op = Vir.Movk { dst; v } }
    | Vir.Alu { is64 = false; op = Femto_ebpf.Opcode.Mov; dst; src = Vir.Imm v }
      ->
        (* 32-bit mov-imm zero-extends its low half *)
        incr count;
        steps.(i) <-
          { s with Vir.op = Vir.Movk { dst; v = Int64.logand v 0xFFFF_FFFFL } }
    | _ -> ()
  done;
  (* Merge runs of add-imm on the same register: one step carries the
     summed immediate, weight and cost of the whole chain. *)
  for i = 0 to n - 2 do
    match (steps.(i).Vir.op, steps.(i + 1).Vir.op) with
    | ( Vir.Alu { is64 = true; op = Femto_ebpf.Opcode.Add; dst = d1; src = Vir.Imm a },
        Vir.Alu { is64 = true; op = Femto_ebpf.Opcode.Add; dst = d2; src = Vir.Imm b } )
      when d1 = d2 ->
        incr count;
        let s1 = steps.(i) and s2 = steps.(i + 1) in
        steps.(i) <- { s1 with Vir.op = Vir.Nop; weight = 0; cost = 0 };
        steps.(i + 1) <-
          {
            Vir.pc = s1.Vir.pc;
            weight = s1.Vir.weight + s2.Vir.weight;
            cost = s1.Vir.cost + s2.Vir.cost;
            op =
              Vir.Alu
                {
                  is64 = true;
                  op = Femto_ebpf.Opcode.Add;
                  dst = d1;
                  src = Vir.Imm (Int64.add a b);
                };
          }
    | _ -> ()
  done;
  { b with Vir.steps }

(* ------------------------------------------------------------------ *)
(* const_fold: forward constant propagation and branch folding.       *)

let const_fold_block count (b : Vir.block) =
  let consts : int64 option array = Array.make 11 None in
  let out = ref [] in
  let term = ref b.Vir.term in
  let n = Array.length b.Vir.steps in
  let i = ref 0 in
  let truncated = ref false in
  while (not !truncated) && !i < n do
    let s = b.Vir.steps.(!i) in
    let operand_const = function
      | Vir.Imm v -> Some v
      | Vir.Reg r -> consts.(r)
    in
    let emit op' = out := { s with Vir.op = op' } :: !out in
    let keep () = out := s :: !out in
    (match s.Vir.op with
    | Vir.Nop | Vir.Trap _ | Vir.Trap_pre _ -> keep ()
    | Vir.Movk { dst; v } ->
        consts.(dst) <- Some v;
        keep ()
    | Vir.Alu { is64; op; dst; src } -> (
        let sv = operand_const src in
        let dv = consts.(dst) in
        let f = if is64 then Interp.alu64 else Interp.alu32 in
        let eval d v =
          match f s.Vir.pc op d v with Ok r -> Some r | Error _ -> None
        in
        let fold =
          match (op, dv, sv) with
          (* mov ignores dst; evaluate through the shared semantics so
             the 32-bit variant zero-extends exactly like the decoded
             tier *)
          | Femto_ebpf.Opcode.Mov, _, Some v -> eval 0L v
          | _, Some d, Some v -> eval d v
          | _ -> None
        in
        match fold with
        | Some r ->
            incr count;
            consts.(dst) <- Some r;
            emit (Vir.Movk { dst; v = r })
        | None -> (
            (* a known register operand becomes an immediate: div/mod by
               a proven-nonzero register stops being fault-capable *)
            match (src, sv) with
            | Vir.Reg _, Some v
              when (match op with
                   | Femto_ebpf.Opcode.Div | Femto_ebpf.Opcode.Mod ->
                       not
                         (if is64 then Int64.equal v 0L
                          else Int64.equal (Int64.logand v 0xFFFF_FFFFL) 0L)
                   | _ -> true) ->
                incr count;
                consts.(dst) <- None;
                emit (Vir.Alu { is64; op; dst; src = Vir.Imm v })
            | _ ->
                consts.(dst) <- None;
                keep ()))
    | Vir.Swap { dst; endianness; width } -> (
        match consts.(dst) with
        | Some v -> (
            match Interp.byte_swap s.Vir.pc endianness width v with
            | Ok r ->
                incr count;
                consts.(dst) <- Some r;
                emit (Vir.Movk { dst; v = r })
            | Error _ ->
                consts.(dst) <- None;
                keep ())
        | None ->
            consts.(dst) <- None;
            keep ())
    | Vir.Load { dst; _ } ->
        consts.(dst) <- None;
        keep ()
    | Vir.Store ({ v = Vir.Reg r; _ } as st) -> (
        match consts.(r) with
        | Some v ->
            incr count;
            emit (Vir.Store { st with v = Vir.Imm v })
        | None -> keep ())
    | Vir.Store _ -> keep ()
    | Vir.Call _ ->
        (* helpers write only r0 *)
        consts.(0) <- None;
        keep ()
    | Vir.Jcond { is64; cond; dst; src; dest } -> (
        match (consts.(dst), operand_const src) with
        | Some d, Some v ->
            incr count;
            if Interp.condition cond is64 d v then begin
              (* taken on every path: the branch becomes the terminator
                 and the unreachable block suffix is dropped *)
              term :=
                Vir.Jump
                  {
                    pc = s.Vir.pc;
                    weight = s.Vir.weight;
                    cost = s.Vir.cost;
                    dest;
                  };
              truncated := true
            end
            else
              (* never taken: accounted no-op *)
              out := { s with Vir.op = Vir.Nop } :: !out
        | _ -> keep ()));
    incr i
  done;
  { b with Vir.steps = Array.of_list (List.rev !out); term = !term }

(* ------------------------------------------------------------------ *)
(* dead_elim: dead register-write elimination.                        *)

(* A step is an observation point when it can fault (register file
   becomes visible), leave the block, or read/write memory or helpers.
   Between observation points, a pure write overwritten before any read
   is invisible and becomes an accounted [Nop]. *)
let dead_elim_block count (b : Vir.block) =
  let steps = Array.copy b.Vir.steps in
  let all_live = 0x7FF in
  (* bit r set = r's current value may still be read.  The register file
     is test-visible after any run, and successor blocks may read any
     register, so every block exit counts as a full observation. *)
  let live = ref all_live in
  for i = Array.length steps - 1 downto 0 do
    let s = steps.(i) in
    match s.Vir.op with
    | Vir.Movk { dst; _ } when !live land (1 lsl dst) = 0 ->
        incr count;
        steps.(i) <- { s with Vir.op = Vir.Nop }
    | Vir.Movk { dst; _ } -> live := !live land lnot (1 lsl dst)
    | Vir.Alu { op; dst; src; _ }
      when (match op with
           | Femto_ebpf.Opcode.Div | Femto_ebpf.Opcode.Mod -> (
               match src with Vir.Reg _ -> false | Vir.Imm _ -> true)
           | _ -> true) ->
        if !live land (1 lsl dst) = 0 then begin
          incr count;
          steps.(i) <- { s with Vir.op = Vir.Nop }
        end
        else begin
          (* reads dst (except mov) and the register operand *)
          (match op with
          | Femto_ebpf.Opcode.Mov -> live := !live land lnot (1 lsl dst)
          | _ -> live := !live lor (1 lsl dst));
          match src with
          | Vir.Reg r -> live := !live lor (1 lsl r)
          | Vir.Imm _ -> ()
        end
    | Vir.Nop -> ()
    | _ ->
        (* fault-capable / memory / helper / branch: everything visible *)
        live := all_live
  done;
  { b with Vir.steps }

(* ------------------------------------------------------------------ *)
(* bounds_elim: check elision and region-cache hoisting.              *)

let bounds_elim_block count (b : Vir.block) =
  let steps =
    Array.map
      (fun (s : Vir.step) ->
        match s.Vir.op with
        | Vir.Load ({ fact; _ } as l) -> (
            match fact with
            | Some { Vir.base_kind = Vir.Base_stack; proven = true; _ } ->
                incr count;
                { s with Vir.op = Vir.Load { l with elide = true } }
            | _ -> { s with Vir.op = Vir.Load { l with hoist = true } })
        | Vir.Store ({ fact; _ } as st) -> (
            match fact with
            | Some { Vir.base_kind = Vir.Base_stack; proven = true; _ } ->
                incr count;
                { s with Vir.op = Vir.Store { st with elide = true } }
            | _ -> { s with Vir.op = Vir.Store { st with hoist = true } })
        | _ -> s)
      b.Vir.steps
  in
  { b with Vir.steps }

(* ------------------------------------------------------------------ *)
(* Pipeline.                                                          *)

let run ?(config = all) (p : Vir.program) : Vir.program * report =
  let steps_before = live_steps p in
  let stage enabled name f p stats =
    if not enabled then (p, { name; enabled; rewrites = 0 } :: stats)
    else begin
      let count = ref 0 in
      let p = map_blocks (f count) p in
      (p, { name; enabled; rewrites = !count } :: stats)
    end
  in
  let folded = ref 0 and eliminated = ref 0 in
  let p, stats = stage config.canon "canon" canon_block p [] in
  let p, stats =
    let count = ref 0 in
    let p, stats =
      if config.const_fold then
        let p = map_blocks (const_fold_block count) p in
        (p, { name = "const_fold"; enabled = true; rewrites = !count } :: stats)
      else
        (p, { name = "const_fold"; enabled = false; rewrites = 0 } :: stats)
    in
    folded := !count;
    (p, stats)
  in
  let p, stats =
    let count = ref 0 in
    let p, stats =
      if config.dead_elim then
        let p = map_blocks (dead_elim_block count) p in
        (p, { name = "dead_elim"; enabled = true; rewrites = !count } :: stats)
      else (p, { name = "dead_elim"; enabled = false; rewrites = 0 } :: stats)
    in
    eliminated := !count;
    (p, stats)
  in
  let p, stats =
    stage config.bounds_elim "bounds_elim" bounds_elim_block p stats
  in
  let elided = Vir.elided_checks p and hoisted = Vir.hoisted_checks p in
  let report =
    {
      passes = List.rev stats;
      blocks = Array.length p.Vir.blocks;
      steps_before;
      steps_after = live_steps p;
      folded = !folded;
      eliminated = !eliminated;
      elided;
      hoisted;
    }
  in
  if Obs.enabled () then begin
    Metrics.add m_blocks report.blocks;
    Metrics.add m_steps report.steps_after;
    Metrics.add m_folded report.folded;
    Metrics.add m_eliminated report.eliminated;
    Metrics.add m_elided report.elided;
    Metrics.add m_hoisted report.hoisted
  end;
  (p, report)

(* ------------------------------------------------------------------ *)
(* JSON rendering ([fc analyze --ir], femto-analysis/1 extension).    *)

let block_to_json (b : Vir.block) =
  Jsonx.Obj
    [
      ("id", Jsonx.Int b.Vir.id);
      ("head", Jsonx.Int b.Vir.head);
      ("weight", Jsonx.Int b.Vir.weight);
      ("branch", Jsonx.Bool b.Vir.branch);
      ( "steps",
        Jsonx.List
          (Array.to_list b.Vir.steps
          |> List.filter (fun (s : Vir.step) -> s.Vir.op <> Vir.Nop)
          |> List.map (fun s -> Jsonx.String (Vir.step_to_string s))) );
      ("term", Jsonx.String (Vir.term_to_string b.Vir.term));
    ]

let to_json (p : Vir.program) (r : report) =
  Jsonx.Obj
    [
      ("blocks", Jsonx.Int r.blocks);
      ("steps_before", Jsonx.Int r.steps_before);
      ("steps_after", Jsonx.Int r.steps_after);
      ("folded", Jsonx.Int r.folded);
      ("eliminated", Jsonx.Int r.eliminated);
      ("checks_elided", Jsonx.Int r.elided);
      ("checks_hoisted", Jsonx.Int r.hoisted);
      ( "passes",
        Jsonx.List
          (List.map
             (fun s ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String s.name);
                   ("enabled", Jsonx.Bool s.enabled);
                   ("rewrites", Jsonx.Int s.rewrites);
                 ])
             r.passes) );
      ("superblocks", Jsonx.List (Array.to_list p.Vir.blocks |> List.map block_to_json));
    ]
