(** Abstract-interpretation pass over verified bytecode.

    Runs after {!Femto_vm.Verifier.verify} and answers questions the
    shape-only verifier cannot: does any path read an uninitialized
    register, is any stack access statically out of the 512 B frame, is
    arithmetic ever used to manufacture a pointer, and does the program
    provably terminate after a single pass (no reachable cycle)?

    Registers are tracked through a small lattice
    [Uninit | Scalar | Stack_ptr of interval | Ctx_ptr | Any] with a
    worklist fixpoint; intervals are widened along back edges so loops
    converge.  The pass is advisory for loading (a program with
    diagnostics still runs on the fully checked interpreter) and
    mandatory only for [fc analyze] / CI, but its proofs pay a dividend:
    DAG-classified programs whose stack accesses are all proven in-bounds
    run on a trimmed interpreter path with no branch-budget counter and
    no per-access stack bounds checks. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  severity : severity;
  pc : int;
  reg : int option;  (** register the diagnostic is about, when any *)
  kind : string;  (** stable machine-readable discriminator *)
  message : string;
}

type termination = Dag | Has_loops

type outcome = {
  diags : diag list;  (** ascending by pc; one uninit-read per register *)
  termination : termination;
  fastpath : bool array option;
      (** [Some proofs] iff the program is fast-path eligible;
          [proofs.(pc)] is true when the stack access at [pc] is proven
          in-bounds on every path *)
  mem_facts : Femto_vm.Ir.mem_fact option array;
      (** per-pc region typing + shifted interval of each memory access
          (from the stabilized fixpoint states); feeds {!Ir.lift} *)
  insns : int;
  blocks : int;
  reachable_blocks : int;
  unreachable : int list;  (** executable pcs no path reaches *)
}

val analyze :
  ?helpers:Femto_vm.Helper.t ->
  Femto_vm.Config.t ->
  Femto_ebpf.Program.t ->
  (outcome, Femto_vm.Fault.t) result
(** Verify then abstractly interpret.  [Error] is a structural fault from
    the pre-flight verifier; an accepted-shape program always yields
    [Ok], with semantic problems reported as [Error]-severity diags.
    Updates the [analysis.*] observability counters and emits an
    [Analysis_done] trace event. *)

val accepted : outcome -> bool
(** True iff no [Error]-severity diagnostic was reported. *)

val errors : outcome -> int

val warnings : outcome -> int

val load :
  ?config:Femto_vm.Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  ?tier:Femto_vm.Vm.tier ->
  ?fuse:bool ->
  ?passes:Passes.config ->
  helpers:Femto_vm.Helper.t ->
  regions:Femto_vm.Region.t list ->
  Femto_ebpf.Program.t ->
  (Femto_vm.Vm.t, Femto_vm.Fault.t) result
(** Analysis-aware replacement for {!Femto_vm.Vm.load}: same acceptance
    (only structural faults reject), but fast-path-eligible programs
    hand their per-pc proofs to the selected tier — the compiled tier
    (default) specializes proven stack accesses and fuses
    superinstructions, the trimmed tier keeps the PR 2 interpreter fast
    path, and the [Ir] tier lifts to superblocks, runs the pass
    pipeline ([passes] selects stages; default all), and compiles one
    closure per optimized block.  Programs with analysis diagnostics
    still load and run fully checked. *)

val load_outcome :
  ?config:Femto_vm.Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  ?tier:Femto_vm.Vm.tier ->
  ?fuse:bool ->
  ?passes:Passes.config ->
  helpers:Femto_vm.Helper.t ->
  regions:Femto_vm.Region.t list ->
  Femto_ebpf.Program.t ->
  (Femto_vm.Vm.t * outcome, Femto_vm.Fault.t) result
(** Like {!load}, additionally returning the analysis {!outcome} so the
    caller can attach the proofs/diagnostics to a container image and
    spawn further instances without re-running the analyzer. *)

val fault_diag : Femto_vm.Fault.t -> diag
(** Render a structural verifier fault as an [Error] diagnostic. *)

val diag_to_json : diag -> Femto_obs.Jsonx.t

val report_to_json :
  (outcome, Femto_vm.Fault.t) result -> Femto_obs.Jsonx.t
(** The [femto-analysis/1] JSON document emitted by [fc analyze]. *)
