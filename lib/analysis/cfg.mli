(** Control-flow graph over eBPF bytecode.

    Basic blocks are maximal straight-line runs of slots; lddw pairs are
    kept inside the block of their head (the tail slot is never a leader
    and never a jump target in verified code).  The graph is built from
    the typed instruction view alone, so it can be constructed for any
    program, but edge targets are only meaningful after
    {!Femto_vm.Verifier.verify} has accepted the program. *)

type block = {
  id : int;
  first : int;  (** pc of the first slot in the block *)
  last : int;  (** pc of the last slot (inclusive; may be an lddw tail) *)
  succs : int list;  (** successor block ids, deduplicated *)
}

type t = {
  program : Femto_ebpf.Program.t;
  blocks : block array;
  block_of_pc : int array;  (** pc -> owning block id *)
  is_tail : bool array;  (** pc is the second slot of an lddw pair *)
  reachable : bool array;  (** per block, from block 0 *)
  back_edges : (int * int) list;
      (** (from, to) block-id pairs closing a cycle, DFS from block 0;
          empty iff the reachable subgraph is a DAG *)
}

val build : Femto_ebpf.Program.t -> t

val has_loops : t -> bool
(** True iff a cycle is reachable from the entry block. *)

val unreachable_pcs : t -> int list
(** Executable pcs (lddw tails excluded) in blocks no path reaches,
    ascending. *)
