(* Abstract interpretation over verified bytecode.

   One abstract state is a vector of eleven register values drawn from a
   small lattice; stack pointers carry an interval of byte offsets
   relative to [stack_vaddr] (so r10 enters holding [stack_size,
   stack_size]).  A worklist fixpoint propagates states across the CFG,
   widening intervals along back edges so loops converge; a final clean
   pass over the stabilized states collects diagnostics and per-pc
   in-bounds proofs.

   Soundness contract for the fast path: a proof at [pc] means the access
   base is r10-derived and its offset interval, shifted by the
   instruction offset, lies inside [0, stack_size - width] on every
   path.  Only [Stack_ptr] values (which can originate from r10 alone)
   ever generate proofs; anything laundered through memory, truncation or
   unknown arithmetic degrades to [Any]/top and stays runtime-checked. *)

open Femto_ebpf
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Helper = Femto_vm.Helper
module Verifier = Femto_vm.Verifier
module Interp = Femto_vm.Interp
module Vm = Femto_vm.Vm
module Vir = Femto_vm.Ir
module Obs = Femto_obs.Obs
module Metrics = Femto_obs.Metrics
module Trace = Femto_obs.Trace
module Jsonx = Femto_obs.Jsonx

let m_accepted = Obs.counter "analysis.accepted"
let m_rejected = Obs.counter "analysis.rejected"
let m_fastpath = Obs.counter "analysis.fastpath_eligible"

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  severity : severity;
  pc : int;
  reg : int option;
  kind : string;
  message : string;
}

type termination = Dag | Has_loops

type outcome = {
  diags : diag list;
  termination : termination;
  fastpath : bool array option;
  mem_facts : Vir.mem_fact option array;
      (* per-pc region typing + interval facts for memory accesses, from
         the stabilized states; feeds the IR lifter *)
  insns : int;
  blocks : int;
  reachable_blocks : int;
  unreachable : int list;
}

(* ------------------------------------------------------------------ *)
(* The register lattice.                                              *)

(* Interval bounds use saturating sentinels standing for +/-infinity so
   loop-widened offsets stay stable under further arithmetic. *)
let top_lo = -0x4000_0000
let top_hi = 0x4000_0000

type aval =
  | Bot  (** no path reaches this point yet *)
  | Uninit  (** may hold leftover bits from a previous run *)
  | Scalar  (** plain number (possibly a region address used as data) *)
  | Stack_ptr of int * int
      (** r10-derived; inclusive offset interval from [stack_vaddr] *)
  | Ctx_ptr  (** the context argument passed in r1 *)
  | Any  (** anything, including pointers laundered through memory *)

let is_ptr = function Stack_ptr _ | Ctx_ptr -> true | _ -> false

let add_off v d =
  if v <= top_lo then top_lo
  else if v >= top_hi then top_hi
  else
    let r = v + d in
    if r <= top_lo then top_lo else if r >= top_hi then top_hi else r

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Uninit, _ | _, Uninit -> Uninit
  | Any, _ | _, Any -> Any
  | Scalar, Scalar -> Scalar
  | Ctx_ptr, Ctx_ptr -> Ctx_ptr
  | Stack_ptr (l1, h1), Stack_ptr (l2, h2) -> Stack_ptr (min l1 l2, max h1 h2)
  | (Scalar | Ctx_ptr | Stack_ptr _), (Scalar | Ctx_ptr | Stack_ptr _) -> Any

(* Widening at back-edge targets: a bound that grew goes straight to its
   sentinel, so loop-carried pointers stabilize in one extra round.
   [grown] must already include [old] (it is [join old incoming]). *)
let widen old grown =
  match (old, grown) with
  | Stack_ptr (l1, h1), Stack_ptr (l2, h2) ->
      Stack_ptr
        ((if l2 < l1 then top_lo else l1), if h2 > h1 then top_hi else h1)
  | _ -> grown

(* Linux-verifier entry convention: only the context pointer (r1) and
   the frame pointer (r10) are readable; everything else must be written
   before use.  The concrete machine zeroes all registers at reset, so
   this is a strictly conservative lint, not a soundness requirement. *)
let entry_state (config : Config.t) =
  let s = Array.make 11 Uninit in
  s.(1) <- Ctx_ptr;
  s.(10) <- Stack_ptr (config.stack_size, config.stack_size);
  s

(* ------------------------------------------------------------------ *)
(* Transfer function.                                                 *)

type ctx = {
  config : Config.t;
  helpers : Helper.t option;
  emit : diag -> unit;
  prove : int -> unit;
  note : int -> Vir.mem_fact -> unit;
      (* record the region typing + shifted interval of a memory access *)
}

let transfer ctx state pc (insn : Insn.t) =
  let emit severity reg kind message =
    ctx.emit { severity; pc; reg; kind; message }
  in
  let use r =
    match state.(r) with
    | Uninit ->
        emit Error (Some r) "uninit_read"
          (Printf.sprintf "r%d read before initialization" r)
    | _ -> ()
  in
  (* After flagging, degrade Uninit/Bot to Any so one bad read produces
     one diagnostic, not a cascade. *)
  let value r = match state.(r) with Bot | Uninit -> Any | v -> v in
  let stack_access ~base ~write:_ nbytes =
    match value base with
    | Stack_ptr (lo, hi) ->
        let lo = add_off lo insn.offset and hi = add_off hi insn.offset in
        let size = ctx.config.Config.stack_size in
        if hi < 0 || lo + nbytes > size then begin
          ctx.note pc
            { Vir.base_kind = Vir.Base_stack; lo; hi; proven = false };
          emit Error (Some base) "stack_oob"
            (Printf.sprintf
               "%d-byte stack access at r%d%+d is outside the %d B frame \
                (offsets %d..%d from frame base)"
               nbytes base insn.offset size lo hi)
        end
        else if lo >= 0 && hi + nbytes <= size then begin
          ctx.note pc { Vir.base_kind = Vir.Base_stack; lo; hi; proven = true };
          ctx.prove pc
        end
        else begin
          ctx.note pc
            { Vir.base_kind = Vir.Base_stack; lo; hi; proven = false };
          if lo > top_lo && hi < top_hi then
            emit Warning (Some base) "stack_maybe_oob"
              (Printf.sprintf
                 "%d-byte stack access at r%d%+d may leave the %d B frame \
                  (offsets %d..%d from frame base)"
                 nbytes base insn.offset size lo hi)
        end
    | Ctx_ptr ->
        ctx.note pc
          {
            Vir.base_kind = Vir.Base_ctx;
            lo = insn.offset;
            hi = insn.offset;
            proven = false;
          }
    | _ ->
        (* non-stack bases stay subject to the runtime allow-list *)
        ctx.note pc
          { Vir.base_kind = Vir.Base_other; lo = 0; hi = 0; proven = false }
  in
  match Insn.kind insn with
  | Insn.Alu (is64, op, source) ->
      let dst = insn.dst in
      let src_v, src_imm =
        match source with
        | Opcode.Src_imm -> (Scalar, Some (Int32.to_int insn.imm))
        | Opcode.Src_reg ->
            use insn.src;
            (value insn.src, None)
      in
      (* mov never reads dst; neg reads only dst. *)
      (match op with
      | Opcode.Mov -> ()
      | _ -> use dst);
      let dst_v = if op = Opcode.Mov then Scalar else value dst in
      if not is64 then begin
        (match op with
        | Opcode.Mov ->
            if is_ptr src_v then
              emit Warning (Some dst) "ptr_trunc"
                "32-bit mov truncates a pointer to a scalar"
        | _ ->
            if is_ptr dst_v || is_ptr src_v then
              emit Error (Some dst) "ptr_arith"
                "32-bit arithmetic on a pointer manufactures an invalid \
                 pointer");
        state.(dst) <- Scalar
      end
      else begin
        match op with
        | Opcode.Mov ->
            state.(dst) <-
              (match src_imm with Some _ -> Scalar | None -> src_v)
        | Opcode.Add ->
            state.(dst) <-
              (match (dst_v, src_v, src_imm) with
              | Stack_ptr (l, h), _, Some d ->
                  Stack_ptr (add_off l d, add_off h d)
              | Ctx_ptr, _, Some _ -> Ctx_ptr
              | Stack_ptr _, Scalar, None -> Stack_ptr (top_lo, top_hi)
              | Scalar, Stack_ptr _, None -> Stack_ptr (top_lo, top_hi)
              | Ctx_ptr, Scalar, None | Scalar, Ctx_ptr, None -> Ctx_ptr
              | (Stack_ptr _ | Ctx_ptr), p, None when is_ptr p ->
                  emit Error (Some dst) "ptr_arith"
                    "adding two pointers manufactures an invalid pointer";
                  Any
              | Scalar, Scalar, _ -> Scalar
              | _ -> Any)
        | Opcode.Sub ->
            state.(dst) <-
              (match (dst_v, src_v, src_imm) with
              | Stack_ptr (l, h), _, Some d ->
                  Stack_ptr (add_off l (-d), add_off h (-d))
              | Ctx_ptr, _, Some _ -> Ctx_ptr
              | Stack_ptr _, Scalar, None -> Stack_ptr (top_lo, top_hi)
              | Ctx_ptr, Scalar, None -> Ctx_ptr
              | (Stack_ptr _ | Ctx_ptr), p, None when is_ptr p ->
                  (* pointer difference is an ordinary number *)
                  Scalar
              | Scalar, p, None when is_ptr p ->
                  emit Error (Some dst) "ptr_arith"
                    "subtracting a pointer from a scalar manufactures an \
                     invalid pointer";
                  Any
              | Scalar, Scalar, _ -> Scalar
              | _ -> Any)
        | Opcode.Neg ->
            if is_ptr dst_v then
              emit Error (Some dst) "ptr_arith" "negating a pointer";
            state.(dst) <- (match dst_v with Any -> Any | _ -> Scalar)
        | Opcode.Mul | Opcode.Div | Opcode.Mod | Opcode.Or | Opcode.And
        | Opcode.Xor | Opcode.Lsh | Opcode.Rsh | Opcode.Arsh ->
            if is_ptr dst_v || is_ptr src_v then
              emit Error (Some dst) "ptr_arith"
                (Printf.sprintf "%s on a pointer manufactures an invalid \
                                 pointer" (Opcode.alu_op_name op));
            state.(dst) <-
              (match (dst_v, src_v) with
              | Any, _ | _, Any -> Any
              | _ -> Scalar)
      end
  | Insn.Load size ->
      use insn.src;
      stack_access ~base:insn.src ~write:false (Opcode.size_bytes size);
      state.(insn.dst) <- Any
  | Insn.Store_imm size ->
      use insn.dst;
      stack_access ~base:insn.dst ~write:true (Opcode.size_bytes size)
  | Insn.Store_reg size ->
      use insn.dst;
      use insn.src;
      stack_access ~base:insn.dst ~write:true (Opcode.size_bytes size)
  | Insn.Lddw_head -> state.(insn.dst) <- Scalar
  | Insn.Lddw_tail -> ()
  | Insn.End _ ->
      use insn.dst;
      if is_ptr (value insn.dst) then
        emit Error (Some insn.dst) "ptr_arith" "byte-swapping a pointer";
      state.(insn.dst) <- Scalar
  | Insn.Ja -> ()
  | Insn.Jcond (_, _, source) -> (
      use insn.dst;
      match source with Opcode.Src_reg -> use insn.src | Opcode.Src_imm -> ())
  | Insn.Call ->
      let id = Int32.to_int insn.imm in
      (match ctx.helpers with
      | None -> ()
      | Some registry -> (
          match Helper.find registry id with
          | None ->
              emit Error None "unknown_helper"
                (Printf.sprintf "call to unregistered helper %d" id)
          | Some entry -> (
              match entry.Helper.arity with
              | None -> ()
              | Some n ->
                  for r = 1 to n do
                    match state.(r) with
                    | Uninit ->
                        emit Error (Some r) "call_signature"
                          (Printf.sprintf
                             "helper %s takes %d argument%s but r%d is \
                              uninitialized"
                             entry.Helper.name n
                             (if n = 1 then "" else "s")
                             r)
                    | _ -> ()
                  done)));
      (* This VM's helpers write only r0. *)
      state.(0) <- Any
  | Insn.Exit -> (
      match state.(0) with
      | Uninit ->
          emit Error (Some 0) "uninit_read"
            "r0 (the return value) is uninitialized at exit"
      | _ -> ())
  | Insn.Invalid _ -> ()

let exec_block ctx (cfg : Cfg.t) state b =
  let blk = cfg.Cfg.blocks.(b) in
  for pc = blk.Cfg.first to blk.Cfg.last do
    if not cfg.Cfg.is_tail.(pc) then
      transfer ctx state pc (Program.get cfg.Cfg.program pc)
  done

(* ------------------------------------------------------------------ *)
(* Fixpoint and reporting.                                            *)

let severity_count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let errors o = severity_count Error o.diags
let warnings o = severity_count Warning o.diags
let accepted o = errors o = 0

let record_event ~insns ~blocks ~loops ~errors ~warnings ~fastpath =
  if Obs.enabled () then begin
    Metrics.incr (if errors = 0 then m_accepted else m_rejected);
    if fastpath then Metrics.incr m_fastpath;
    Obs.event (fun () ->
        Trace.Analysis_done { insns; blocks; loops; errors; warnings; fastpath })
  end

let analyze ?helpers (config : Config.t) program :
    (outcome, Fault.t) result =
  match Verifier.verify ?helpers config program with
  | Result.Error fault ->
      record_event ~insns:(Program.length program) ~blocks:0 ~loops:false
        ~errors:1 ~warnings:0 ~fastpath:false;
      Result.Error fault
  | Result.Ok vstats ->
      let len = Program.length program in
      let cfg = Cfg.build program in
      let n = Array.length cfg.Cfg.blocks in
      let inputs = Array.init n (fun _ -> Array.make 11 Bot) in
      inputs.(0) <- entry_state config;
      let silent =
        {
          config;
          helpers;
          emit = (fun _ -> ());
          prove = (fun _ -> ());
          note = (fun _ _ -> ());
        }
      in
      let in_wl = Array.make n false in
      let wl = Queue.create () in
      Queue.add 0 wl;
      in_wl.(0) <- true;
      while not (Queue.is_empty wl) do
        let b = Queue.pop wl in
        in_wl.(b) <- false;
        let out = Array.copy inputs.(b) in
        exec_block silent cfg out b;
        List.iter
          (fun s ->
            let is_back = List.mem (b, s) cfg.Cfg.back_edges in
            let old = inputs.(s) in
            let changed = ref false in
            let merged =
              Array.mapi
                (fun i oldv ->
                  let j = join oldv out.(i) in
                  let j = if is_back then widen oldv j else j in
                  if j <> oldv then changed := true;
                  j)
                old
            in
            if !changed then begin
              inputs.(s) <- merged;
              if not in_wl.(s) then begin
                Queue.add s wl;
                in_wl.(s) <- true
              end
            end)
          cfg.Cfg.blocks.(b).Cfg.succs
      done;
      (* Clean reporting pass over the stabilized states: each reachable
         pc is interpreted exactly once, so diagnostics and proofs need
         no deduplication. *)
      let diags = ref [] in
      let proofs = Array.make len false in
      let mem_facts = Array.make len None in
      let ctx =
        {
          config;
          helpers;
          emit = (fun d -> diags := d :: !diags);
          prove = (fun pc -> proofs.(pc) <- true);
          note = (fun pc f -> mem_facts.(pc) <- Some f);
        }
      in
      for b = 0 to n - 1 do
        if cfg.Cfg.reachable.(b) then
          exec_block ctx cfg (Array.copy inputs.(b)) b
      done;
      let unreachable = Cfg.unreachable_pcs cfg in
      List.iter
        (fun pc ->
          ctx.emit
            {
              severity = Warning;
              pc;
              reg = None;
              kind = "unreachable_code";
              message = "no path reaches this instruction";
            })
        unreachable;
      let diags =
        List.sort
          (fun a b -> compare (a.pc, a.kind, a.reg) (b.pc, b.kind, b.reg))
          !diags
      in
      (* One uninitialized register produces one report (at its first
         offending pc), not one per read site: later reads are symptoms
         of the same missing write. *)
      let diags =
        let seen = Hashtbl.create 8 in
        List.filter
          (fun d ->
            match (d.kind, d.reg) with
            | "uninit_read", Some r ->
                if Hashtbl.mem seen r then false
                else begin
                  Hashtbl.add seen r ();
                  true
                end
            | _ -> true)
          diags
      in
      let termination = if Cfg.has_loops cfg then Has_loops else Dag in
      let n_errors = severity_count Error diags in
      let n_warnings = severity_count Warning diags in
      (* Fast-path eligibility: every instruction of a DAG executes at
         most once, so with the whole program inside both static budgets
         neither counter can fire; proven stack accesses cannot miss the
         allow-list.  The trimmed interpreter is observationally
         equivalent for such programs. *)
      let eligible =
        termination = Dag && n_errors = 0
        && vstats.Verifier.branch_count <= config.max_branches
        && len <= Config.dynamic_instruction_limit config
      in
      let reachable_blocks =
        Array.fold_left (fun k r -> if r then k + 1 else k) 0 cfg.Cfg.reachable
      in
      record_event ~insns:len ~blocks:n ~loops:(termination = Has_loops)
        ~errors:n_errors ~warnings:n_warnings ~fastpath:eligible;
      Result.Ok
        {
          diags;
          termination;
          fastpath = (if eligible then Some proofs else None);
          mem_facts;
          insns = len;
          blocks = n;
          reachable_blocks;
          unreachable;
        }

let load_outcome ?(config = Config.default) ?cycle_cost ?(tier = Vm.Compiled)
    ?fuse ?passes ~helpers ~regions program =
  match analyze ~helpers config program with
  | Result.Error fault -> Result.Error fault
  | Result.Ok outcome ->
      (* [analyze] already ran pre-flight verification; hand the per-pc
         proofs (when eligibility granted them) to the tier constructor
         so the compiled tier specializes proven stack accesses and the
         trimmed loop keeps working as before.  The Ir tier additionally
         lifts to superblocks and runs the pass pipeline here — the
         analyzer owns the IR just as it owns the proofs. *)
      let ir =
        match tier with
        | Vm.Ir ->
            let cost =
              match cycle_cost with Some c -> c | None -> Interp.no_cost
            in
            let lifted = Ir.lift ~cost ~facts:outcome.mem_facts program in
            let optimized, _report = Passes.run ?config:passes lifted in
            Some optimized
        | _ -> None
      in
      Result.Ok
        ( Vm.load_analyzed ~config ?cycle_cost ~tier ?fuse
            ?proofs:outcome.fastpath ?ir ~helpers ~regions program,
          outcome )

let load ?config ?cycle_cost ?tier ?fuse ?passes ~helpers ~regions program =
  match
    load_outcome ?config ?cycle_cost ?tier ?fuse ?passes ~helpers ~regions
      program
  with
  | Result.Error fault -> Result.Error fault
  | Result.Ok (vm, _outcome) -> Result.Ok vm

(* ------------------------------------------------------------------ *)
(* JSON rendering (schema femto-analysis/1).                          *)

let fault_pc = function
  | Fault.Invalid_opcode { pc; _ }
  | Fault.Invalid_register { pc; _ }
  | Fault.Readonly_register { pc }
  | Fault.Bad_jump { pc; _ }
  | Fault.Jump_to_lddw_tail { pc; _ }
  | Fault.Truncated_lddw { pc }
  | Fault.Malformed_lddw_tail { pc }
  | Fault.Division_by_zero { pc }
  | Fault.Memory_access { pc; _ }
  | Fault.Unknown_helper { pc; _ }
  | Fault.Helper_error { pc; _ }
  | Fault.Fall_off_end { pc }
  | Fault.Nonzero_field { pc; _ }
  | Fault.Bad_end_instruction { pc } ->
      pc
  | Fault.Instruction_budget_exhausted _ | Fault.Branch_budget_exhausted _
  | Fault.Program_too_long _ | Fault.Empty_program ->
      0

let fault_diag fault =
  {
    severity = Error;
    pc = fault_pc fault;
    reg = None;
    kind = Fault.kind fault;
    message = Fault.to_string fault;
  }

let diag_to_json d =
  Jsonx.Obj
    [
      ("severity", Jsonx.String (severity_name d.severity));
      ("pc", Jsonx.Int d.pc);
      ("register", match d.reg with Some r -> Jsonx.Int r | None -> Jsonx.Null);
      ("kind", Jsonx.String d.kind);
      ("message", Jsonx.String d.message);
    ]

let report_to_json result =
  let verdict_ok, fields =
    match result with
    | Result.Error fault ->
        ( false,
          [
            ("termination", Jsonx.Null);
            ("fastpath_eligible", Jsonx.Bool false);
            ("diagnostics", Jsonx.List [ diag_to_json (fault_diag fault) ]);
          ] )
    | Result.Ok o ->
        ( accepted o,
          [
            ( "termination",
              Jsonx.String
                (match o.termination with Dag -> "dag" | Has_loops -> "has_loops")
            );
            ("fastpath_eligible", Jsonx.Bool (o.fastpath <> None));
            ("insns", Jsonx.Int o.insns);
            ("blocks", Jsonx.Int o.blocks);
            ("reachable_blocks", Jsonx.Int o.reachable_blocks);
            ( "unreachable_pcs",
              Jsonx.List (List.map (fun pc -> Jsonx.Int pc) o.unreachable) );
            ("errors", Jsonx.Int (errors o));
            ("warnings", Jsonx.Int (warnings o));
            ("diagnostics", Jsonx.List (List.map diag_to_json o.diags));
          ] )
  in
  Jsonx.Obj
    (("schema", Jsonx.String "femto-analysis/1")
    :: ("verdict", Jsonx.String (if verdict_ok then "accepted" else "rejected"))
    :: fields)
