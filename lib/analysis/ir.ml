(* Superblock construction: verified bytecode -> register IR.

   Superblock heads are the entry slot and every in-range jump target;
   unlike [Cfg] leaders, the slot after a conditional branch does NOT
   start a new block — the branch becomes a *side exit* step and the
   block extends across it, so straight-line runs with untaken branches
   execute as one specialized closure.  A block ends at an unconditional
   transfer ([ja]/[exit]), at the next head, or at the end of the code
   array.

   Lifting is total and fault-faithful: malformed or statically-faulting
   instructions lift to [Trap]/[Trap_pre] steps carrying the exact
   decoded-tier fault payload, and jumps whose target lies outside the
   code array keep the target pc so the backend reproduces
   [Fall_off_end] identically.  Each step records the [weight] (decoded
   instructions it stands for: an lddw pair is ONE — the tail is never
   executed) and the cycle-model [cost] the decoded tier would charge,
   so batched accounting is bit-exact. *)

open Femto_ebpf
module Vir = Femto_vm.Ir
module Fault = Femto_vm.Fault

type t = Vir.program

(* Per-instruction analyzer facts consumed by lifting; produced by
   [Analysis.analyze] ([outcome.mem_facts]). *)
type facts = Vir.mem_fact option array

let lift ~cost ~(facts : facts) program : Vir.program =
  let len = Program.length program in
  let insns = Program.insns program in
  let kinds = Array.map Insn.kind insns in
  let fact pc = if pc < Array.length facts then facts.(pc) else None in
  (* Head marking: slot 0 plus every in-range jump target.  A target
     inside an lddw pair stays a head (possible only pre-verification):
     the block lifted there traps exactly like the decoded tier. *)
  let heads = Array.make (max len 1) false in
  if len > 0 then heads.(0) <- true;
  Array.iteri
    (fun pc insn ->
      match kinds.(pc) with
      | Insn.Ja | Insn.Jcond _ ->
          let target = pc + 1 + insn.Insn.offset in
          if target >= 0 && target < len then heads.(target) <- true
      | _ -> ())
    insns;
  (* Lddw tails never start a block on fall-through; they are absorbed
     into the head's [Movk].  (A direct jump target remains a head.) *)
  let block_of_head = Array.make (max len 1) (-1) in
  let nblocks = ref 0 in
  for pc = 0 to len - 1 do
    if heads.(pc) then begin
      block_of_head.(pc) <- !nblocks;
      incr nblocks
    end
  done;
  let dest_of target =
    if target >= 0 && target < len then Vir.Block block_of_head.(target)
    else Vir.Out_of_range target
  in
  let lift_block head =
    let steps = ref [] in
    let term = ref None in
    let push s = steps := s :: !steps in
    let trap ~pre pc c f =
      (* fault step: [pre] faults before its own accounting (decoded
         register-range check), otherwise after *)
      push
        {
          Vir.pc;
          weight = (if pre then 0 else 1);
          cost = (if pre then 0 else c);
          op = (if pre then Vir.Trap_pre f else Vir.Trap f);
        };
      term := Some (Vir.Halt f)
    in
    let pc = ref head in
    while !term = None do
      let p = !pc in
      if p >= len then term := Some (Vir.Halt (Fault.Fall_off_end { pc = p }))
      else if p <> head && heads.(p) then
        term := Some (Vir.Fall { dest = block_of_head.(p) })
      else begin
        let insn = insns.(p) in
        let kind = kinds.(p) in
        let c = cost kind in
        let step op = push { Vir.pc = p; weight = 1; cost = c; op } in
        if insn.Insn.dst > 10 then
          trap ~pre:true p c
            (Fault.Invalid_register { pc = p; reg = insn.Insn.dst })
        else if insn.Insn.src > 10 then
          trap ~pre:true p c
            (Fault.Invalid_register { pc = p; reg = insn.Insn.src })
        else begin
          (match kind with
          | Insn.Alu (is64, op, source) -> (
              let src =
                match source with
                | Opcode.Src_imm -> Vir.Imm (Int64.of_int32 insn.Insn.imm)
                | Opcode.Src_reg -> Vir.Reg insn.Insn.src
              in
              match (op, src) with
              | (Opcode.Div | Opcode.Mod), Vir.Imm v
                when (if is64 then Int64.equal v 0L
                      else Int64.equal (Int64.logand v 0xFFFF_FFFFL) 0L) ->
                  trap ~pre:false p c (Fault.Division_by_zero { pc = p })
              | _ -> step (Vir.Alu { is64; op; dst = insn.Insn.dst; src }))
          | Insn.Load size ->
              step
                (Vir.Load
                   {
                     dst = insn.Insn.dst;
                     base = insn.Insn.src;
                     off = insn.Insn.offset;
                     nbytes = Opcode.size_bytes size;
                     fact = fact p;
                     elide = false;
                     hoist = false;
                   })
          | Insn.Store_imm size ->
              step
                (Vir.Store
                   {
                     base = insn.Insn.dst;
                     off = insn.Insn.offset;
                     nbytes = Opcode.size_bytes size;
                     v = Vir.Imm (Int64.of_int32 insn.Insn.imm);
                     fact = fact p;
                     elide = false;
                     hoist = false;
                   })
          | Insn.Store_reg size ->
              step
                (Vir.Store
                   {
                     base = insn.Insn.dst;
                     off = insn.Insn.offset;
                     nbytes = Opcode.size_bytes size;
                     v = Vir.Reg insn.Insn.src;
                     fact = fact p;
                     elide = false;
                     hoist = false;
                   })
          | Insn.Lddw_head ->
              if p + 1 >= len then
                trap ~pre:false p c (Fault.Truncated_lddw { pc = p })
              else begin
                step
                  (Vir.Movk
                     {
                       dst = insn.Insn.dst;
                       v = Insn.lddw_imm ~head:insn ~tail:insns.(p + 1);
                     });
                (* the tail slot is consumed, never executed *)
                incr pc
              end
          | Insn.Lddw_tail ->
              (* reachable only by a direct jump in unverified input *)
              trap ~pre:false p c (Fault.Invalid_opcode { pc = p; opcode = 0 })
          | Insn.End endianness -> (
              match insn.Insn.imm with
              | 16l | 32l | 64l ->
                  step
                    (Vir.Swap
                       {
                         dst = insn.Insn.dst;
                         endianness;
                         width = insn.Insn.imm;
                       })
              | _ ->
                  trap ~pre:false p c
                    (Fault.Nonzero_field { pc = p; field = "end width" }))
          | Insn.Ja ->
              term :=
                Some
                  (Vir.Jump
                     {
                       pc = p;
                       weight = 1;
                       cost = c;
                       dest = dest_of (p + 1 + insn.Insn.offset);
                     })
          | Insn.Jcond (is64, cond, source) ->
              let src =
                match source with
                | Opcode.Src_imm -> Vir.Imm (Int64.of_int32 insn.Insn.imm)
                | Opcode.Src_reg -> Vir.Reg insn.Insn.src
              in
              step
                (Vir.Jcond
                   {
                     is64;
                     cond;
                     dst = insn.Insn.dst;
                     src;
                     dest = dest_of (p + 1 + insn.Insn.offset);
                   })
          | Insn.Call -> step (Vir.Call { id = Int32.to_int insn.Insn.imm })
          | Insn.Exit -> term := Some (Vir.Exit { pc = p; weight = 1; cost = c })
          | Insn.Invalid opcode ->
              trap ~pre:false p c (Fault.Invalid_opcode { pc = p; opcode }));
          incr pc
        end
      end
    done;
    (Array.of_list (List.rev !steps), Option.get !term)
  in
  let blocks =
    Array.make !nblocks
      {
        Vir.id = 0;
        head = 0;
        steps = [||];
        term = Vir.Halt (Fault.Fall_off_end { pc = 0 });
        weight = 0;
        branch = false;
      }
  in
  for head = 0 to len - 1 do
    if heads.(head) then begin
      let id = block_of_head.(head) in
      let steps, term = lift_block head in
      let weight =
        Array.fold_left (fun w (s : Vir.step) -> w + s.Vir.weight) 0 steps
        + (match term with
          | Vir.Exit { weight; _ } | Vir.Jump { weight; _ } -> weight
          | Vir.Fall _ | Vir.Halt _ -> 0)
      in
      let branch =
        (match term with Vir.Jump _ -> true | _ -> false)
        || Array.exists
             (fun (s : Vir.step) ->
               match s.Vir.op with Vir.Jcond _ -> true | _ -> false)
             steps
      in
      blocks.(id) <- { Vir.id; head; steps; term; weight; branch }
    end
  done;
  { Vir.blocks; source_len = len }
