(* Control-flow graph construction.

   Leaders are: slot 0, every jump target, and every slot following a
   terminator (ja/jcond/exit).  A block runs from its leader to the slot
   before the next leader; because every terminator marks its successor a
   leader, terminators always end their block.  Lddw tails are absorbed
   into the head's block and never split it. *)

open Femto_ebpf

type block = { id : int; first : int; last : int; succs : int list }

type t = {
  program : Program.t;
  blocks : block array;
  block_of_pc : int array;
  is_tail : bool array;
  reachable : bool array;
  back_edges : (int * int) list;
}

(* Mark lddw tail slots, tolerating malformed programs (a head in the
   final slot simply has no tail). *)
let mark_tails program len =
  let is_tail = Array.make len false in
  let pc = ref 0 in
  while !pc < len do
    (match Insn.kind (Program.get program !pc) with
    | Insn.Lddw_head when !pc + 1 < len ->
        is_tail.(!pc + 1) <- true;
        incr pc
    | _ -> ());
    incr pc
  done;
  is_tail

let build program =
  let len = Program.length program in
  let is_tail = mark_tails program len in
  let in_range t = t >= 0 && t < len in
  let leader = Array.make len false in
  if len > 0 then leader.(0) <- true;
  for pc = 0 to len - 1 do
    if not is_tail.(pc) then begin
      let insn = Program.get program pc in
      match Insn.kind insn with
      | Insn.Ja | Insn.Jcond _ ->
          let target = pc + 1 + insn.Insn.offset in
          if in_range target then leader.(target) <- true;
          if pc + 1 < len then leader.(pc + 1) <- true
      | Insn.Exit -> if pc + 1 < len then leader.(pc + 1) <- true
      | _ -> ()
    end
  done;
  (* Never split between an lddw head and its tail; verified programs
     cannot jump to a tail, so this only matters for malformed input. *)
  for pc = 0 to len - 1 do
    if is_tail.(pc) then leader.(pc) <- false
  done;
  let n_blocks = Array.fold_left (fun n l -> if l then n + 1 else n) 0 leader in
  let firsts = Array.make (max n_blocks 1) 0 in
  let block_of_pc = Array.make len (-1) in
  let bi = ref (-1) in
  for pc = 0 to len - 1 do
    if leader.(pc) then begin
      incr bi;
      firsts.(!bi) <- pc
    end;
    block_of_pc.(pc) <- !bi
  done;
  let last_of i = if i + 1 < n_blocks then firsts.(i + 1) - 1 else len - 1 in
  let succs_of i =
    let last = last_of i in
    let last_exec = if is_tail.(last) then last - 1 else last in
    let insn = Program.get program last_exec in
    let fallthrough () =
      if last + 1 < len then [ block_of_pc.(last + 1) ] else []
    in
    let raw =
      match Insn.kind insn with
      | Insn.Ja ->
          let t = last_exec + 1 + insn.Insn.offset in
          if in_range t then [ block_of_pc.(t) ] else []
      | Insn.Jcond _ ->
          let t = last_exec + 1 + insn.Insn.offset in
          (if in_range t then [ block_of_pc.(t) ] else []) @ fallthrough ()
      | Insn.Exit -> []
      | _ -> fallthrough ()
    in
    List.sort_uniq compare raw
  in
  let blocks =
    Array.init n_blocks (fun i ->
        { id = i; first = firsts.(i); last = last_of i; succs = succs_of i })
  in
  (* DFS from the entry block: reachability plus back-edge detection via
     the classic white/grey/black colouring. *)
  let colour = Array.make (max n_blocks 1) 0 in
  let back = ref [] in
  let rec dfs b =
    colour.(b) <- 1;
    List.iter
      (fun s ->
        if colour.(s) = 1 then back := (b, s) :: !back
        else if colour.(s) = 0 then dfs s)
      blocks.(b).succs;
    colour.(b) <- 2
  in
  if n_blocks > 0 then dfs 0;
  let reachable = Array.init (max n_blocks 1) (fun b -> colour.(b) <> 0) in
  {
    program;
    blocks;
    block_of_pc;
    is_tail;
    reachable;
    back_edges = List.rev !back;
  }

let has_loops t = t.back_edges <> []

let unreachable_pcs t =
  let acc = ref [] in
  for pc = Array.length t.block_of_pc - 1 downto 0 do
    let b = t.block_of_pc.(pc) in
    if b >= 0 && (not t.reachable.(b)) && not t.is_tail.(pc) then
      acc := pc :: !acc
  done;
  !acc
