(* CoAP block-wise transfer (RFC 7959).

   SUIT payloads and manifests routinely exceed a 6LoWPAN frame; block-wise
   transfer moves them in power-of-two chunks with per-block confirmable
   retransmission.  Block1 covers large requests (uploads), Block2 large
   responses (downloads).

   Option value: a uint encoding (num << 4) | (m << 3) | szx where the
   block size is 2^(szx + 4), szx in 0..6 (16..1024 bytes). *)

let opt_block2 = 23
let opt_block1 = 27

type t = { num : int; more : bool; szx : int }

let size t = 1 lsl (t.szx + 4)

let szx_of_size size =
  match size with
  | 16 -> 0
  | 32 -> 1
  | 64 -> 2
  | 128 -> 3
  | 256 -> 4
  | 512 -> 5
  | 1024 -> 6
  | _ -> invalid_arg "Block.szx_of_size: not a valid block size"

(* The option value is at most 3 bytes, so after the 4-bit shift the
   block number has 20 bits of room. *)
let max_num = 0xFFFFF

let make ~num ~more ~size =
  if num < 0 || num > max_num then
    invalid_arg "Block.make: num must fit 20 bits";
  { num; more; szx = szx_of_size size }

(* --- option value codec: big-endian uint, 0-3 bytes --- *)

let encode t =
  if t.num < 0 || t.num > max_num then
    invalid_arg "Block.encode: num must fit 20 bits";
  if t.szx < 0 || t.szx > 6 then
    invalid_arg "Block.encode: szx must be in 0..6";
  let v = (t.num lsl 4) lor ((if t.more then 1 else 0) lsl 3) lor t.szx in
  if v = 0 then ""
  else if v < 0x100 then String.make 1 (Char.chr v)
  else if v < 0x10000 then
    let b = Bytes.create 2 in
    Bytes.set_uint16_be b 0 v;
    Bytes.to_string b
  else begin
    let b = Bytes.create 3 in
    Bytes.set_uint8 b 0 ((v lsr 16) land 0xff);
    Bytes.set_uint16_be b 1 (v land 0xffff);
    Bytes.to_string b
  end

let decode value =
  if String.length value > 3 then None
  else begin
    let v = String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 value in
    let szx = v land 0x7 in
    if szx = 7 then None (* reserved *)
    else Some { num = v lsr 4; more = v land 0x8 <> 0; szx }
  end

let to_option ~number t = (number, encode t)

let of_message ~number (message : Message.t) =
  List.find_map
    (fun (n, v) -> if n = number then decode v else None)
    message.Message.options

(* Slice [payload] for block [num] of [size] bytes; returns the chunk and
   whether more blocks follow. *)
let slice ~num ~size payload =
  let total = String.length payload in
  let start = num * size in
  if start >= total && total > 0 then None
  else if total = 0 && num > 0 then None
  else begin
    let len = min size (total - start) in
    let chunk = String.sub payload start len in
    Some (chunk, start + len < total)
  end

(* Reassembly buffer for one block-wise upload.  With [~digest:true] an
   incremental SHA-256 runs alongside: each chunk is hashed as it
   arrives, so the payload digest is ready the moment the last block
   lands — the update pipeline's digest gate then needs no second pass
   over the payload. *)
type assembly = {
  buffer : Buffer.t;
  mutable expected_num : int;
  mutable digest : Femto_crypto.Sha256.ctx option;
}

let create_assembly ?(digest = false) () =
  {
    buffer = Buffer.create 256;
    expected_num = 0;
    digest = (if digest then Some (Femto_crypto.Sha256.init ()) else None);
  }

let assembled_bytes assembly = Buffer.length assembly.buffer

(* Finalize and return the streaming digest (once; the context is
   consumed).  None when the assembly was created without [~digest]. *)
let finalize_digest assembly =
  match assembly.digest with
  | None -> None
  | Some ctx ->
      assembly.digest <- None;
      Some (Femto_crypto.Sha256.finalize ctx)

type feed_result =
  | Continue (* block stored, awaiting the next *)
  | Complete of string (* final block stored; full payload *)
  | Out_of_order (* unexpected block number: restart required *)

let feed assembly block chunk =
  if block.num <> assembly.expected_num then Out_of_order
  else begin
    Buffer.add_string assembly.buffer chunk;
    Option.iter
      (fun ctx -> Femto_crypto.Sha256.update_string ctx chunk)
      assembly.digest;
    assembly.expected_num <- assembly.expected_num + 1;
    if block.more then Continue else Complete (Buffer.contents assembly.buffer)
  end
