(** CoAP message codec (RFC 7252). *)

type msg_type = Confirmable | Non_confirmable | Acknowledgement | Reset

(** {2 Codes as (class, detail)} *)

val code_empty : int * int
val code_get : int * int
val code_post : int * int
val code_put : int * int
val code_delete : int * int

val code_content : int * int
(** 2.05 — encodes to 69, the code the paper's formatter container uses. *)

val code_created : int * int
val code_changed : int * int

val code_continue : int * int
(** 2.31 — more Block1 blocks expected (RFC 7959). *)

val code_bad_request : int * int
val code_unauthorized : int * int
val code_not_found : int * int
val code_request_entity_incomplete : int * int
val code_request_entity_too_large : int * int
val code_internal_error : int * int

val code_to_int : int * int -> int
val code_of_int : int -> int * int
val code_to_string : int * int -> string

(** {2 Option numbers} *)

val opt_etag : int
val opt_observe : int
val opt_uri_path : int
val opt_content_format : int
val opt_max_age : int
val opt_uri_query : int

type t = {
  msg_type : msg_type;
  code : int * int;
  message_id : int;
  token : string;
  options : (int * string) list;  (** (number, value), kept sorted *)
  payload : string;
}

exception Parse_error of string

val make :
  ?msg_type:msg_type ->
  ?token:string ->
  ?options:(int * string) list ->
  ?payload:string ->
  code:int * int ->
  message_id:int ->
  unit ->
  t

val uri_path : t -> string list
val path_string : t -> string
val content_format : t -> int option

val observe : t -> int option
(** The RFC 7641 Observe option (0 register, 1 deregister, else a
    notification sequence number). *)

val observe_option : int -> int * string
val options_of_path : string -> (int * string) list
val content_format_option : int -> int * string

val etag : t -> string option
val etag_option : string -> int * string

val max_age : t -> int option
(** The Max-Age option as a uint (RFC 7252 §5.10.5). *)

val max_age_option : int -> int * string

val encode : t -> bytes

val encode_into : Buffer.t -> t -> unit
(** Append the wire form to a caller-owned scratch buffer — the
    transport's reply path reuses one buffer across datagrams. *)

val decode : bytes -> t
(** Raises {!Parse_error} on malformed input. *)

val decode_sub : bytes -> off:int -> len:int -> t
(** Parse a message from a slice of [data] in place (no upfront copy of
    the datagram); the transport's receive path hands in its reused recv
    buffer.  Raises {!Parse_error} on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
