(* Unix-UDP transport: the socket edge in front of a {!Server}.

   One acceptor loop (optionally its own domain) drains a nonblocking
   datagram socket into a single reused receive buffer, parses each
   datagram in place ({!Message.decode_sub} — no per-datagram copy of
   the wire bytes), and feeds it to the attached server.  Replies leave
   through [sendto] directly from the encoded reply buffer.

   Remote socket peers are mapped to integer addresses above
   [peer_base], so the same server can keep simulated-network neighbours
   (small addresses) and real UDP peers side by side: [attach] swaps the
   server's send function for one that routes peer ids to the socket and
   falls back to the original behaviour for everything else. *)

module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics

let m_rx = Obs.counter "edge.rx_datagrams"
let m_tx = Obs.counter "edge.tx_datagrams"

(* Simulated-net addresses are tiny; anything at or above this is a
   socket peer. *)
let peer_base = 0x0100_0000

type stats = {
  mutable rx_datagrams : int;
  mutable rx_bytes : int;
  mutable tx_datagrams : int;
  mutable tx_bytes : int;
}

type t = {
  socket : Unix.file_descr;
  bound_port : int;
  (* peer id <-> sockaddr, assigned on first contact *)
  peers : (Unix.sockaddr, int) Hashtbl.t;
  peer_addrs : (int, Unix.sockaddr) Hashtbl.t;
  mutable next_peer : int;
  recv_buf : Bytes.t;
  stop : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
  stats : stats;
}

let max_datagram = 65_536

let create ?(host = "127.0.0.1") ?(port = 0) () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.set_nonblock socket;
  let bound_port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  {
    socket;
    bound_port;
    peers = Hashtbl.create 16;
    peer_addrs = Hashtbl.create 16;
    next_peer = peer_base;
    recv_buf = Bytes.create max_datagram;
    stop = Atomic.make false;
    acceptor = None;
    stats = { rx_datagrams = 0; rx_bytes = 0; tx_datagrams = 0; tx_bytes = 0 };
  }

let port t = t.bound_port
let stats t = t.stats
let peer_count t = Hashtbl.length t.peers

let peer_id t sockaddr =
  match Hashtbl.find_opt t.peers sockaddr with
  | Some id -> id
  | None ->
      let id = t.next_peer in
      t.next_peer <- t.next_peer + 1;
      Hashtbl.replace t.peers sockaddr id;
      Hashtbl.replace t.peer_addrs id sockaddr;
      id

let send_to_peer t ~dst data =
  match Hashtbl.find_opt t.peer_addrs dst with
  | None -> () (* peer never seen: nowhere to route *)
  | Some sockaddr ->
      let len = Bytes.length data in
      (try ignore (Unix.sendto t.socket data 0 len [] sockaddr)
       with Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ());
      t.stats.tx_datagrams <- t.stats.tx_datagrams + 1;
      t.stats.tx_bytes <- t.stats.tx_bytes + len;
      if Obs.enabled () then Ometrics.incr m_tx

(* [attach t server]: socket peers route here, everything else keeps the
   server's previous behaviour (e.g. its simulated-network node). *)
let attach t server =
  let fallback = Server.send_fn server in
  Server.set_send server (fun ~dst data ->
      if dst >= peer_base then send_to_peer t ~dst data
      else fallback ~dst data)

(* Drain every datagram currently queued on the socket into [server];
   returns how many were consumed.  The receive buffer is reused across
   datagrams and parsed in place. *)
let drain t server =
  let rec loop n =
    match Unix.recvfrom t.socket t.recv_buf 0 max_datagram [] with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop n
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* a peer's ICMP error bounced back; ignore and keep draining *)
        loop n
    | len, sockaddr ->
        t.stats.rx_datagrams <- t.stats.rx_datagrams + 1;
        t.stats.rx_bytes <- t.stats.rx_bytes + len;
        if Obs.enabled () then Ometrics.incr m_rx;
        let src = peer_id t sockaddr in
        Server.handle_datagram_sub server ~src t.recv_buf ~off:0 ~len;
        loop (n + 1)
  in
  loop 0

(* The acceptor loop: select until readable (or the poll interval
   elapses, to observe [stop]), then drain. *)
let run ?(poll_s = 0.05) t server =
  attach t server;
  while not (Atomic.get t.stop) do
    (match Unix.select [ t.socket ] [] [] poll_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> ignore (drain t server));
    ()
  done

let spawn ?poll_s t server =
  if t.acceptor <> None then invalid_arg "transport already running";
  t.acceptor <- Some (Domain.spawn (fun () -> run ?poll_s t server))

let stop t =
  Atomic.set t.stop true;
  (match t.acceptor with
  | Some d ->
      Domain.join d;
      t.acceptor <- None
  | None -> ());
  (try Unix.close t.socket with Unix.Unix_error _ -> ())

(* --- synchronous client: one socket, blocking receives --------------- *)

(* Enough client to load-test and script the edge: confirmable requests
   with retransmission, Block1 uploads, observe registration + a
   blocking notification pump.  Used by `fc get`, the edge bench and the
   loopback tests; not a general CoAP client. *)
module Client = struct
  type t = {
    socket : Unix.file_descr;
    server_addr : Unix.sockaddr;
    mutable next_mid : int;
    mutable next_token : int;
    mutable retransmissions : int;
    recv_buf : Bytes.t;
    ack_timeout_s : float;
    max_retransmit : int;
  }

  let create ?(host = "127.0.0.1") ?(ack_timeout_s = 0.25)
      ?(max_retransmit = 4) ~port () =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    {
      socket;
      server_addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port);
      next_mid = Random.int 0x8000;
      next_token = Random.int 0x8000;
      retransmissions = 0;
      recv_buf = Bytes.create max_datagram;
      ack_timeout_s;
      max_retransmit;
    }

  let close t = try Unix.close t.socket with Unix.Unix_error _ -> ()
  let retransmissions t = t.retransmissions

  let fresh_mid t =
    let mid = t.next_mid in
    t.next_mid <- (t.next_mid + 1) land 0xFFFF;
    mid

  let fresh_token t =
    let token = Printf.sprintf "%04x" (t.next_token land 0xFFFF) in
    t.next_token <- t.next_token + 1;
    token

  let send_raw t data =
    ignore (Unix.sendto t.socket data 0 (Bytes.length data) [] t.server_addr)

  (* Block until a datagram parses, or [timeout_s] elapses. *)
  let recv t ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec wait () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else
        match Unix.select [ t.socket ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | [], _, _ -> None
        | _ :: _, _, _ -> (
            match Unix.recvfrom t.socket t.recv_buf 0 max_datagram [] with
            | exception
                Unix.Unix_error
                  ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ECONNREFUSED), _, _)
              ->
                wait ()
            | len, _ -> (
                match Message.decode_sub t.recv_buf ~off:0 ~len with
                | exception Message.Parse_error _ -> wait ()
                | msg -> Some msg))
    in
    wait ()

  (* Issue a confirmable request and wait for the matching response,
     retransmitting with exponential back-off. *)
  let transact t message =
    let encoded = Message.encode message in
    let rec attempt n timeout_s =
      send_raw t encoded;
      if n > 0 then t.retransmissions <- t.retransmissions + 1;
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec await () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then
          if n >= t.max_retransmit then Error `Timeout
          else attempt (n + 1) (timeout_s *. 2.0)
        else
          match recv t ~timeout_s:remaining with
          | None ->
              if n >= t.max_retransmit then Error `Timeout
              else attempt (n + 1) (timeout_s *. 2.0)
          | Some response
            when String.equal response.Message.token message.Message.token ->
              Ok response
          | Some _ -> await () (* stale datagram (old dup): keep waiting *)
      in
      await ()
    in
    attempt 0 t.ack_timeout_s

  let request t ~code ~path ?(options = []) ?(payload = "") () =
    transact t
      (Message.make ~token:(fresh_token t)
         ~options:(Message.options_of_path path @ options)
         ~payload ~code ~message_id:(fresh_mid t) ())

  let get t ~path = request t ~code:Message.code_get ~path ()

  let post t ~path ~payload =
    request t ~code:Message.code_post ~path ~payload ()

  (* Sequential Block1 upload, one confirmable exchange per block. *)
  let post_blockwise ?(block_size = 64) t ~path ~payload =
    let rec send_block num =
      match Block.slice ~num ~size:block_size payload with
      | None -> post t ~path ~payload
      | Some (chunk, more) -> (
          let block = Block.make ~num ~more ~size:block_size in
          match
            request t ~code:Message.code_post ~path
              ~options:[ Block.to_option ~number:Block.opt_block1 block ]
              ~payload:chunk ()
          with
          | Error `Timeout -> Error `Timeout
          | Ok response ->
              if more then
                if response.Message.code = Message.code_continue then
                  send_block (num + 1)
                else Ok response (* early error: report it *)
              else Ok response)
    in
    send_block 0

  (* Register an observe relationship; notifications arrive through
     {!recv} on this client's socket. *)
  let observe t ~path =
    request t ~code:Message.code_get ~path
      ~options:[ Message.observe_option 0 ]
      ()
end
