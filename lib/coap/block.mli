(** CoAP block-wise transfer (RFC 7959).

    SUIT payloads routinely exceed a 6LoWPAN frame; block-wise transfer
    moves them in power-of-two chunks with per-block confirmable
    retransmission.  Block1 covers large requests (uploads), Block2 large
    responses (downloads). *)

val opt_block2 : int
val opt_block1 : int

type t = { num : int; more : bool; szx : int }

val size : t -> int
(** Block size in bytes, [2^(szx+4)]. *)

val max_num : int
(** Largest encodable block number (20 bits: the 3-byte option value
    minus the 4 control bits), [0xFFFFF]. *)

val make : num:int -> more:bool -> size:int -> t
(** Raises [Invalid_argument] when [size] is not 16, 32, ..., 1024 or
    [num] is outside [0..max_num]. *)

val encode : t -> string
(** The option value (0-3 byte big-endian uint).  Raises
    [Invalid_argument] when the fields are out of range rather than
    silently truncating the block number. *)

val decode : string -> t option

val to_option : number:int -> t -> int * string
val of_message : number:int -> Message.t -> t option

val slice : num:int -> size:int -> string -> (string * bool) option
(** [slice ~num ~size payload] is block [num] and whether more follow;
    [None] past the end. *)

(** {2 Reassembly of uploads} *)

type assembly

val create_assembly : ?digest:bool -> unit -> assembly
(** With [~digest:true], an incremental SHA-256 runs alongside
    reassembly: each chunk is hashed as it arrives, so the payload
    digest is available the moment the final block lands. *)

val assembled_bytes : assembly -> int
(** Bytes received so far. *)

val finalize_digest : assembly -> string option
(** The streaming digest of everything fed so far; consumes the digest
    context (at most one call returns [Some]).  [None] when the assembly
    was created without [~digest] or the digest was already taken. *)

type feed_result =
  | Continue  (** block stored, awaiting the next *)
  | Complete of string  (** final block stored; full payload *)
  | Out_of_order  (** unexpected block number: restart required *)

val feed : assembly -> t -> string -> feed_result
