(** Unix-UDP transport: the socket edge in front of a {!Server}.

    One acceptor loop (optionally its own domain) drains a nonblocking
    datagram socket into a reused receive buffer, parses each datagram
    in place, and feeds it to the attached server; replies leave through
    [sendto].  Remote peers get integer addresses at or above
    {!peer_base}, so a server can face the simulated network and real
    sockets at the same time. *)

val peer_base : int
(** Socket peers are numbered from here; smaller addresses remain
    simulated-network neighbours. *)

type stats = {
  mutable rx_datagrams : int;
  mutable rx_bytes : int;
  mutable tx_datagrams : int;
  mutable tx_bytes : int;
}

type t

val create : ?host:string -> ?port:int -> unit -> t
(** Bind a nonblocking UDP socket ([port] 0 picks an ephemeral port;
    default host 127.0.0.1). *)

val port : t -> int
(** The actually-bound port. *)

val stats : t -> stats
val peer_count : t -> int

val attach : t -> Server.t -> unit
(** Route the server's replies: peer ids go to the socket, everything
    else keeps the server's previous send behaviour. *)

val drain : t -> Server.t -> int
(** Consume every datagram currently queued on the socket; returns the
    count.  Useful for single-threaded tests and benches ([run] calls
    this after [select]). *)

val run : ?poll_s:float -> t -> Server.t -> unit
(** The acceptor loop: [attach], then select/drain until {!stop}. *)

val spawn : ?poll_s:float -> t -> Server.t -> unit
(** Run the acceptor loop on its own domain. *)

val stop : t -> unit
(** Stop the loop, join the acceptor domain, close the socket. *)

(** Synchronous CoAP client over its own UDP socket: confirmable
    requests with retransmission, Block1 uploads, observe registration
    and a blocking notification pump — enough for `fc get`, the edge
    bench and the loopback tests. *)
module Client : sig
  type t

  val create :
    ?host:string ->
    ?ack_timeout_s:float ->
    ?max_retransmit:int ->
    port:int ->
    unit ->
    t

  val close : t -> unit
  val retransmissions : t -> int

  val request :
    t ->
    code:int * int ->
    path:string ->
    ?options:(int * string) list ->
    ?payload:string ->
    unit ->
    (Message.t, [ `Timeout ]) result

  val get : t -> path:string -> (Message.t, [ `Timeout ]) result
  val post : t -> path:string -> payload:string -> (Message.t, [ `Timeout ]) result

  val post_blockwise :
    ?block_size:int ->
    t ->
    path:string ->
    payload:string ->
    (Message.t, [ `Timeout ]) result

  val observe : t -> path:string -> (Message.t, [ `Timeout ]) result
  (** Register an observe relationship; notifications then arrive via
      {!recv}. *)

  val recv : t -> timeout_s:float -> Message.t option
  (** Block until the next parseable datagram or the timeout. *)
end
