(* CoAP message codec (RFC 7252).

   Wire format:
     byte 0:  Ver(2) | Type(2) | TKL(4)
     byte 1:  Code (class 3 bits . detail 5 bits)
     2-3:     Message ID (big endian)
     4..:     Token (TKL bytes)
     then options, delta-encoded and sorted by number, with 13/14
     extended nibbles; then 0xFF + payload if non-empty. *)

type msg_type = Confirmable | Non_confirmable | Acknowledgement | Reset

let msg_type_code = function
  | Confirmable -> 0
  | Non_confirmable -> 1
  | Acknowledgement -> 2
  | Reset -> 3

let msg_type_of_code = function
  | 0 -> Confirmable
  | 1 -> Non_confirmable
  | 2 -> Acknowledgement
  | 3 -> Reset
  | _ -> assert false

(* Codes as (class, detail). *)
let code_empty = (0, 0)
let code_get = (0, 1)
let code_post = (0, 2)
let code_put = (0, 3)
let code_delete = (0, 4)
let code_content = (2, 5) (* 2.05, the paper's response code 69 *)
let code_created = (2, 1)
let code_changed = (2, 4)
let code_continue = (2, 31) (* RFC 7959: more Block1 blocks expected *)
let code_bad_request = (4, 0)
let code_unauthorized = (4, 1)
let code_not_found = (4, 4)
let code_request_entity_incomplete = (4, 8) (* RFC 7959 *)
let code_request_entity_too_large = (4, 13)
let code_internal_error = (5, 0)

let code_to_int (cls, detail) = (cls lsl 5) lor detail
let code_of_int v = (v lsr 5, v land 0x1f)

let code_to_string (cls, detail) = Printf.sprintf "%d.%02d" cls detail

(* Option numbers. *)
let opt_etag = 4
let opt_observe = 6 (* RFC 7641 *)
let opt_uri_path = 11
let opt_content_format = 12
let opt_max_age = 14
let opt_uri_query = 15

type t = {
  msg_type : msg_type;
  code : int * int;
  message_id : int;
  token : string;
  options : (int * string) list; (* (number, value), kept sorted *)
  payload : string;
}

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

let make ?(msg_type = Confirmable) ?(token = "") ?(options = []) ?(payload = "")
    ~code ~message_id () =
  {
    msg_type;
    code;
    message_id;
    token;
    options = List.stable_sort (fun (a, _) (b, _) -> compare a b) options;
    payload;
  }

let uri_path t =
  List.filter_map (fun (n, v) -> if n = opt_uri_path then Some v else None) t.options

let path_string t = "/" ^ String.concat "/" (uri_path t)

(* RFC 7641: the Observe option as a uint (register = 0, deregister = 1;
   in notifications, a sequence number). *)
let observe t =
  List.find_map
    (fun (n, v) ->
      if n = opt_observe then
        Some (String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 v)
      else None)
    t.options

let observe_option v =
  if v = 0 then (opt_observe, "")
  else if v < 0x100 then (opt_observe, String.make 1 (Char.chr v))
  else if v < 0x10000 then
    ( opt_observe,
      let b = Bytes.create 2 in
      Bytes.set_uint16_be b 0 v;
      Bytes.to_string b )
  else
    ( opt_observe,
      let b = Bytes.create 3 in
      Bytes.set_uint8 b 0 ((v lsr 16) land 0xff);
      Bytes.set_uint16_be b 1 (v land 0xffff);
      Bytes.to_string b )

let content_format t =
  List.find_map
    (fun (n, v) ->
      if n = opt_content_format then
        Some (String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 v)
      else None)
    t.options

let options_of_path path =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "")
  |> List.map (fun segment -> (opt_uri_path, segment))

let etag t = List.assoc_opt opt_etag t.options
let etag_option v = (opt_etag, v)

(* Max-Age as a uint option (RFC 7252 §5.10.5). *)
let max_age t =
  List.find_map
    (fun (n, v) ->
      if n = opt_max_age then
        Some (String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 v)
      else None)
    t.options

let max_age_option v =
  if v = 0 then (opt_max_age, "")
  else if v < 0x100 then (opt_max_age, String.make 1 (Char.chr v))
  else
    ( opt_max_age,
      let b = Bytes.create 2 in
      Bytes.set_uint16_be b 0 (v land 0xFFFF);
      Bytes.to_string b )

let content_format_option fmt =
  if fmt = 0 then (opt_content_format, "")
  else if fmt < 256 then (opt_content_format, String.make 1 (Char.chr fmt))
  else
    ( opt_content_format,
      let b = Bytes.create 2 in
      Bytes.set_uint16_be b 0 fmt;
      Bytes.to_string b )

(* --- encoding --- *)

let encode_option_header buf ~delta ~length =
  let nibble v = if v < 13 then v else if v < 269 then 13 else 14 in
  let dn = nibble delta and ln = nibble length in
  Buffer.add_char buf (Char.chr ((dn lsl 4) lor ln));
  let extend v n =
    if n = 13 then Buffer.add_char buf (Char.chr (v - 13))
    else if n = 14 then begin
      let b = Bytes.create 2 in
      Bytes.set_uint16_be b 0 (v - 269);
      Buffer.add_bytes buf b
    end
  in
  extend delta dn;
  extend length ln

(* [encode_into buf t] appends the wire form to [buf] — the transport's
   zero-copy reply path reuses one scratch buffer per datagram instead
   of allocating a fresh one per response. *)
let encode_into buf t =
  let tkl = String.length t.token in
  if tkl > 8 then invalid_arg "CoAP token longer than 8 bytes";
  Buffer.add_char buf (Char.chr ((1 lsl 6) lor (msg_type_code t.msg_type lsl 4) lor tkl));
  Buffer.add_char buf (Char.chr (code_to_int t.code));
  let mid = Bytes.create 2 in
  Bytes.set_uint16_be mid 0 (t.message_id land 0xFFFF);
  Buffer.add_bytes buf mid;
  Buffer.add_string buf t.token;
  let previous = ref 0 in
  List.iter
    (fun (number, value) ->
      encode_option_header buf ~delta:(number - !previous)
        ~length:(String.length value);
      Buffer.add_string buf value;
      previous := number)
    t.options;
  if t.payload <> "" then begin
    Buffer.add_char buf '\xff';
    Buffer.add_string buf t.payload
  end

let encode t =
  let buf = Buffer.create 32 in
  encode_into buf t;
  Buffer.to_bytes buf

(* --- decoding --- *)

(* [decode_sub data ~off ~len] parses a message in place from a slice of
   [data] — the transport's receive path hands in its one reused recv
   buffer, so nothing is copied until a field (token, option value,
   payload) is actually materialised. *)
let decode_sub data ~off ~len =
  if len < 4 then parse_error "message shorter than header";
  if off < 0 || off + len > Bytes.length data then
    parse_error "slice out of bounds";
  let at i = Char.code (Bytes.unsafe_get data (off + i)) in
  let b0 = at 0 in
  let version = b0 lsr 6 in
  if version <> 1 then parse_error "bad version %d" version;
  let msg_type = msg_type_of_code ((b0 lsr 4) land 0x3) in
  let tkl = b0 land 0x0f in
  if tkl > 8 then parse_error "token length %d > 8" tkl;
  if 4 + tkl > len then parse_error "truncated token";
  let code = code_of_int (at 1) in
  let message_id = (at 2 lsl 8) lor at 3 in
  let token = Bytes.sub_string data (off + 4) tkl in
  let pos = ref (4 + tkl) in
  let options = ref [] in
  let previous = ref 0 in
  let payload = ref "" in
  let byte () =
    if !pos >= len then parse_error "truncated option";
    let c = at !pos in
    incr pos;
    c
  in
  let extended v =
    if v < 13 then v
    else if v = 13 then 13 + byte ()
    else if v = 14 then begin
      let high = byte () in
      269 + ((high lsl 8) lor byte ())
    end
    else parse_error "reserved option nibble 15"
  in
  let rec loop () =
    if !pos >= len then ()
    else begin
      let initial = byte () in
      if initial = 0xff then begin
        if !pos >= len then parse_error "payload marker with empty payload";
        payload := Bytes.sub_string data (off + !pos) (len - !pos);
        pos := len
      end
      else begin
        let delta = extended (initial lsr 4) in
        let length = extended (initial land 0x0f) in
        if !pos + length > len then parse_error "truncated option value";
        let value = Bytes.sub_string data (off + !pos) length in
        pos := !pos + length;
        let number = !previous + delta in
        previous := number;
        options := (number, value) :: !options;
        loop ()
      end
    end
  in
  loop ();
  {
    msg_type;
    code;
    message_id;
    token;
    options = List.rev !options;
    payload = !payload;
  }

let decode data = decode_sub data ~off:0 ~len:(Bytes.length data)

let equal a b =
  a.msg_type = b.msg_type && a.code = b.code && a.message_id = b.message_id
  && String.equal a.token b.token
  && a.options = b.options
  && String.equal a.payload b.payload

let pp ppf t =
  Format.fprintf ppf "%s %s mid=%d path=%s payload=%S"
    (match t.msg_type with
    | Confirmable -> "CON"
    | Non_confirmable -> "NON"
    | Acknowledgement -> "ACK"
    | Reset -> "RST")
    (code_to_string t.code) t.message_id (path_string t) t.payload
