(** CoAP resource server bound to a simulated network node.

    Resources are registered by path; confirmable requests get
    piggybacked acknowledgements with message-id deduplication (CON
    retransmissions receive the cached response).  Large uploads and
    downloads use RFC 7959 block-wise transfer transparently; observers
    are managed per RFC 7641. *)

module Network = Femto_net.Network

type response = {
  code : int * int;
  options : (int * string) list;
  payload : string;
}

val respond : ?options:(int * string) list -> ?payload:string -> int * int -> response

type handler = src:int -> Message.t -> response
(** Handlers see the complete request (block-wise uploads arrive
    reassembled); exceptions become 5.00 responses. *)

type sink = {
  start : unit -> unit;  (** first block of a transfer *)
  chunk : string -> unit;  (** each payload chunk, in arrival order *)
  finish : src:int -> digest:string -> size:int -> Message.t -> response;
      (** final block: the reassembled request plus the streaming SHA-256
          and total byte count, computed while blocks arrived *)
  abort : unit -> unit;
      (** transfer failed (out-of-order block or sink exception); must be
          idempotent and tolerate firing without a matching [start] *)
}
(** A streaming upload consumer.  Registering one instead of a plain
    handler lets storage writes and digest work overlap the block-wise
    transfer instead of starting after reassembly. *)

type t

val create : ?block_size:int -> network:Network.t -> addr:int -> unit -> t
(** Attach a server node to the network.  [block_size] (default 64) is
    the RFC 7959 chunk size for large transfers. *)

val register : t -> path:string -> handler -> unit

val register_upload : t -> path:string -> sink -> unit
(** Register a streaming upload consumer at [path].  Block1 chunks are
    pushed into the sink as they arrive; single-datagram requests drive
    [start]/[chunk]/[finish] in one shot. *)

val addr : t -> int
val requests_served : t -> int

val notify : t -> path:string -> int
(** Re-evaluate the resource and push a non-confirmable notification to
    every observer (RFC 7641); returns how many were notified. *)

val observer_count : t -> path:string -> int
