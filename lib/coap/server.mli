(** CoAP resource server behind a pluggable datagram backend.

    Resources are registered by path; confirmable requests get
    piggybacked acknowledgements with bounded message-id deduplication
    (CON retransmissions receive the cached response).  Large uploads
    and downloads use RFC 7959 block-wise transfer transparently;
    observers are managed per RFC 7641 with a single-encode fan-out.

    The server consumes datagrams via {!handle_datagram} and replies
    through a swappable send function, so the same handlers/sinks serve
    the simulated network ({!create}) and a real UDP socket
    ({!create_detached} + {!Transport}). *)

module Network = Femto_net.Network

type response = {
  code : int * int;
  options : (int * string) list;
  payload : string;
}

val respond : ?options:(int * string) list -> ?payload:string -> int * int -> response

type handler = src:int -> Message.t -> response
(** Handlers see the complete request (block-wise uploads arrive
    reassembled); exceptions become 5.00 responses. *)

type sink = {
  start : unit -> unit;  (** first block of a transfer *)
  chunk : string -> unit;  (** each payload chunk, in arrival order *)
  finish : src:int -> digest:string -> size:int -> Message.t -> response;
      (** final block: the reassembled request plus the streaming SHA-256
          and total byte count, computed while blocks arrived *)
  abort : unit -> unit;
      (** transfer failed (out-of-order block or sink exception); must be
          idempotent and tolerate firing without a matching [start] *)
}
(** A streaming upload consumer.  Registering one instead of a plain
    handler lets storage writes and digest work overlap the block-wise
    transfer instead of starting after reassembly. *)

type t

val create :
  ?block_size:int ->
  ?dedupe_capacity:int ->
  network:Network.t ->
  addr:int ->
  unit ->
  t
(** Attach a server node to the simulated network.  [block_size]
    (default 64) is the RFC 7959 chunk size for large transfers;
    [dedupe_capacity] (default 64) bounds the message-id dedupe table
    (LRU eviction, counted in [coap.dedupe_evictions]). *)

val create_detached :
  ?block_size:int ->
  ?dedupe_capacity:int ->
  addr:int ->
  send:(dst:int -> bytes -> unit) ->
  unit ->
  t
(** A server with no network attached: datagrams come in through
    {!handle_datagram} and replies leave through [send].  This is the
    backend the Unix-UDP transport drives. *)

val handle_datagram : t -> src:int -> bytes -> unit
(** Feed one datagram (whole buffer); malformed input is dropped. *)

val handle_datagram_sub : t -> src:int -> bytes -> off:int -> len:int -> unit
(** Same, parsing a slice of a reused receive buffer in place. *)

val set_send : t -> (dst:int -> bytes -> unit) -> unit
val send_fn : t -> dst:int -> bytes -> unit

val register : t -> path:string -> handler -> unit

val register_cached : ?max_age_s:int -> t -> path:string -> handler -> unit
(** Like {!register}, but 2.05 GET responses are cached for
    [max_age_s] (default 60) seconds and served with ETag/Max-Age
    options; cache hits skip the handler entirely.  {!notify} and
    {!invalidate} drop the entry. *)

val register_upload : t -> path:string -> sink -> unit
(** Register a streaming upload consumer at [path].  Block1 chunks are
    pushed into the sink as they arrive; single-datagram requests drive
    [start]/[chunk]/[finish] in one shot. *)

val invalidate : t -> path:string -> unit
(** Drop the cached GET response for [path], if any. *)

val addr : t -> int
val requests_served : t -> int

val dedupe_evictions : t -> int
(** LRU evictions from the message-id dedupe table since creation. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the idempotent-GET response cache. *)

val set_time_source : t -> (unit -> float) -> unit
(** Replace the wall clock used for Max-Age expiry (tests). *)

val notify : t -> path:string -> int
(** Re-evaluate the resource once, encode the notification once, and
    fan it out to every observer with only the per-observer token
    spliced in (RFC 7641); returns how many were notified. *)

val observer_count : t -> path:string -> int
