(* gcoap-style helpers: CoAP response formatting from inside a
   Femto-Container (paper §8.3 and Listing in [33]).

   The container receives a packet-context pointer (the hook context) and a
   writable packet-buffer region; it builds the response through helpers —
   bpf_gcoap_resp_init, bpf_coap_add_format, bpf_coap_opt_finish,
   bpf_fmt_s16_dfp, bpf_coap_set_payload_len — writing the payload through
   allow-list-checked memory.  The OCaml side then frames the final CoAP
   message from the builder state. *)

module Mem = Femto_vm.Mem
module Region = Femto_vm.Region
module Helper = Femto_vm.Helper
module Syscall = Femto_core.Syscall

(* Virtual address of the packet payload buffer region. *)
let pkt_vaddr = 0x4000_0000L
let pkt_size = 128

type builder = {
  buffer : bytes; (* backing of the packet region; payload written here *)
  mutable code : int; (* CoAP code byte, e.g. 69 = 2.05 Content *)
  mutable format : int option;
  mutable payload_len : int;
  mutable finished : bool;
}

let create_builder () =
  {
    buffer = Bytes.make pkt_size '\000';
    code = Message.code_to_int Message.code_internal_error;
    format = None;
    payload_len = 0;
    finished = false;
  }

let reset builder =
  Bytes.fill builder.buffer 0 pkt_size '\000';
  builder.code <- Message.code_to_int Message.code_internal_error;
  builder.format <- None;
  builder.payload_len <- 0;
  builder.finished <- false

(* The packet region granted to the container at attach time. *)
let pkt_region builder =
  Region.make ~name:"coap-pkt" ~vaddr:pkt_vaddr ~perm:Region.Read_write
    builder.buffer

(* Render a signed value as decimal fixed-point, as RIOT's fmt_s16_dfp
   does: scale = decimal exponent, e.g. value=2372 scale=-2 -> "23.72". *)
let fmt_s16_dfp value scale =
  if scale >= 0 then
    Printf.sprintf "%Ld%s" value (String.make scale '0')
  else begin
    let magnitude = Int64.abs value in
    let divisor = Int64.of_float (10.0 ** float_of_int (-scale)) in
    let integer = Int64.unsigned_div magnitude divisor in
    let fraction = Int64.unsigned_rem magnitude divisor in
    Printf.sprintf "%s%Ld.%0*Ld"
      (if Int64.compare value 0L < 0 then "-" else "")
      integer (-scale) fraction
  end

(* Install the CoAP helper set; gated behind the Net_coap capability by
   the engine.  All helpers treat a1 as the packet-context token. *)
let install builder helpers =
  Helper.register helpers ~id:Syscall.id_gcoap_resp_init ~cost_cycles:150 ~arity:2
    ~name:"bpf_gcoap_resp_init"
    (fun _mem args ->
      builder.code <- Int64.to_int args.Helper.a2 land 0xff;
      Ok 0L);
  Helper.register helpers ~id:Syscall.id_coap_add_format ~cost_cycles:60 ~arity:2
    ~name:"bpf_coap_add_format"
    (fun _mem args ->
      builder.format <- Some (Int64.to_int args.Helper.a2 land 0xffff);
      Ok 0L);
  Helper.register helpers ~id:Syscall.id_coap_opt_finish ~cost_cycles:60 ~arity:1
    ~name:"bpf_coap_opt_finish"
    (fun _mem _args ->
      builder.finished <- true;
      (* options are framed host-side; the payload starts at the beginning
         of the packet buffer region *)
      Ok pkt_vaddr);
  Helper.register helpers ~id:Syscall.id_fmt_s16_dfp ~cost_cycles:120 ~arity:3
    ~name:"bpf_fmt_s16_dfp"
    (fun mem args ->
      let scale =
        (* sign-extended small scale in a3 *)
        let raw = Int64.to_int args.Helper.a3 in
        if raw > 32767 then raw - 65536 else raw
      in
      let text = fmt_s16_dfp args.Helper.a2 scale in
      match Mem.store_bytes mem ~addr:args.Helper.a1 (Bytes.of_string text) with
      | Ok () -> Ok (Int64.of_int (String.length text))
      | Error () -> Error "fmt destination outside allow-list");
  Helper.register helpers ~id:Syscall.id_coap_set_payload_len ~cost_cycles:30 ~arity:2
    ~name:"bpf_coap_set_payload_len"
    (fun _mem args ->
      let len = Int64.to_int args.Helper.a2 in
      if len < 0 || len > pkt_size then Error "payload length out of range"
      else begin
        builder.payload_len <- len;
        Ok 0L
      end)

(* Register with the engine so any container granted Net_coap gets the
   helpers. *)
let attach_to_engine engine builder =
  Femto_core.Engine.add_helper_installer engine Femto_core.Contract.Net_coap
    (install builder)

(* Extract the response the container built. *)
let response builder =
  let options =
    match builder.format with
    | Some fmt -> [ Message.content_format_option fmt ]
    | None -> []
  in
  let payload = Bytes.sub_string builder.buffer 0 builder.payload_len in
  Server.respond ~options ~payload (Message.code_of_int builder.code)
