(* CoAP resource server behind a pluggable datagram backend.

   Resources are registered by path; confirmable requests are answered
   with piggybacked acknowledgements, as gcoap does in RIOT.  Handlers
   return a (code, options, payload) triple — or delegate to a
   Femto-Container through the [Gcoap] glue.

   The server itself is transport-agnostic: it consumes datagrams via
   {!handle_datagram} and emits replies through a swappable [send]
   function.  [create] wires it to a simulated-network node; the Unix
   transport ({!Transport}) attaches the same server to a real UDP
   socket, so one set of handlers/sinks serves both worlds. *)

module Network = Femto_net.Network
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* CoAP-server metrics across all server instances; per-request outcome
   detail goes to the trace ring as Coap_request events. *)
let m_requests = Obs.counter "coap.requests"
let m_not_found = Obs.counter "coap.not_found"
let m_handler_errors = Obs.counter "coap.handler_errors"
let m_retransmissions = Obs.counter "coap.retransmissions"
let m_notifications = Obs.counter "coap.notifications"
let m_notify_encodes = Obs.counter "coap.notify_encodes"
let m_dedupe_evictions = Obs.counter "coap.dedupe_evictions"
let m_cache_hits = Obs.counter "coap.cache_hits"
let m_cache_misses = Obs.counter "coap.cache_misses"

type response = { code : int * int; options : (int * string) list; payload : string }

let respond ?(options = []) ?(payload = "") code = { code; options; payload }

type handler = src:int -> Message.t -> response

(* A streaming upload consumer: Block1 chunks are pushed into [chunk] as
   they arrive (so flash programming and digest work overlap the
   transfer), and [finish] runs when the final block lands, with the
   streaming SHA-256 and total size already computed.  [abort] must be
   idempotent: it also fires for out-of-order restarts that never saw
   [start]. *)
type sink = {
  start : unit -> unit;
  chunk : string -> unit;
  finish : src:int -> digest:string -> size:int -> Message.t -> response;
  abort : unit -> unit;
}

type resource =
  | Plain of handler
  | Upload of sink
  | Cached of { handler : handler; max_age_s : int }

(* One fresh entry per cached path: the fully-optioned response (ETag +
   Max-Age included) plus its wall-clock expiry. *)
type cache_entry = { ce_response : response; ce_expires : float }

type t = {
  addr : int;
  mutable send : dst:int -> bytes -> unit;
  resources : (string, resource) Hashtbl.t;
  mutable requests_served : int;
  mutable not_found : int;
  (* message-id deduplication: CON retransmissions of a request we already
     answered get the cached *encoded* response again.  Bounded LRU: the
     ring holds insertion order and overflow evicts the oldest entry. *)
  recent : (int * int, bytes) Hashtbl.t; (* (src, mid) -> encoded reply *)
  recent_ring : (int * int) Queue.t;
  dedupe_capacity : int;
  mutable dedupe_evictions : int;
  (* idempotent-GET response cache, keyed by path; hits skip dispatch and
     the handler entirely *)
  cache : (string, cache_entry) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable now : unit -> float; (* injectable for max-age expiry tests *)
  (* RFC 7959 state: Block1 reassembly per (src, path), and the full
     payload of an in-progress Block2 download per (src, path) *)
  uploads : (int * string, Block.assembly) Hashtbl.t;
  downloads : (int * string, string) Hashtbl.t;
  block_size : int;
  (* RFC 7641 observe relationships: path -> (observer addr, token) *)
  observers : (string, (int * string) list ref) Hashtbl.t;
  mutable observe_seq : int;
}

let create_detached ?(block_size = 64) ?(dedupe_capacity = 64) ~addr ~send () =
  {
    addr;
    send;
    resources = Hashtbl.create 8;
    requests_served = 0;
    not_found = 0;
    recent = Hashtbl.create 16;
    recent_ring = Queue.create ();
    dedupe_capacity = max 1 dedupe_capacity;
    dedupe_evictions = 0;
    cache = Hashtbl.create 8;
    cache_hits = 0;
    cache_misses = 0;
    now = Unix.gettimeofday;
    uploads = Hashtbl.create 4;
    downloads = Hashtbl.create 4;
    block_size;
    observers = Hashtbl.create 4;
    observe_seq = 2;
  }

(* --- the bounded dedupe table --- *)

let remember_reply t key encoded =
  if not (Hashtbl.mem t.recent key) then begin
    Queue.push key t.recent_ring;
    if Queue.length t.recent_ring > t.dedupe_capacity then begin
      let oldest = Queue.pop t.recent_ring in
      Hashtbl.remove t.recent oldest;
      t.dedupe_evictions <- t.dedupe_evictions + 1;
      if Obs.enabled () then Ometrics.incr m_dedupe_evictions
    end
  end;
  Hashtbl.replace t.recent key encoded

(* --- request handling --- *)

let rec handle t ~src request =
  match request.Message.msg_type with
  | Message.Acknowledgement | Message.Reset -> ()
  | Message.Confirmable | Message.Non_confirmable -> (
      let key = (src, request.Message.message_id) in
      match Hashtbl.find_opt t.recent key with
      | Some cached ->
          if Obs.enabled () then Ometrics.incr m_retransmissions;
          t.send ~dst:src cached
      | None ->
          let response = dispatch t ~src request in
          let reply =
            Message.make
              ~msg_type:
                (match request.Message.msg_type with
                | Message.Confirmable -> Message.Acknowledgement
                | _ -> Message.Non_confirmable)
              ~token:request.Message.token ~options:response.options
              ~payload:response.payload ~code:response.code
              ~message_id:request.Message.message_id ()
          in
          let encoded = Message.encode reply in
          remember_reply t key encoded;
          t.send ~dst:src encoded)

(* Block1: accumulate upload blocks.  For Plain resources the handler
   only runs when the final block arrives, with the reassembled payload;
   for Upload sinks every chunk is pushed as it lands (streaming flash
   writes) with an incremental SHA-256 running alongside, and [finish]
   fires together with the last block — digest and storage writes
   complete with the transfer. *)
and handle_block1 t ~src request block =
  let path = Message.path_string request in
  let key = (src, path) in
  let sink =
    match Hashtbl.find_opt t.resources path with
    | Some (Upload s) -> Some s
    | Some (Plain _) | Some (Cached _) | None -> None
  in
  let assembly =
    match Hashtbl.find_opt t.uploads key with
    | Some a when block.Block.num > 0 -> a
    | _ ->
        let a = Block.create_assembly ~digest:(sink <> None) () in
        Hashtbl.replace t.uploads key a;
        if block.Block.num = 0 then
          Option.iter (fun s -> s.start ()) sink;
        a
  in
  match Block.feed assembly block request.Message.payload with
  | Block.Continue -> (
      match sink with
      | None ->
          respond
            ~options:[ Block.to_option ~number:Block.opt_block1 block ]
            Message.code_continue
      | Some s -> (
          match s.chunk request.Message.payload with
          | () ->
              respond
                ~options:[ Block.to_option ~number:Block.opt_block1 block ]
                Message.code_continue
          | exception _ ->
              (try s.abort () with _ -> ());
              Hashtbl.remove t.uploads key;
              if Obs.enabled () then Ometrics.incr m_handler_errors;
              respond Message.code_internal_error))
  | Block.Complete payload ->
      Hashtbl.remove t.uploads key;
      let full = { request with Message.payload } in
      let response =
        match sink with
        | None -> run_handler t ~src full
        | Some s ->
            run_resource t ~src ~path (Upload s) (fun () ->
                s.chunk request.Message.payload;
                let digest =
                  match Block.finalize_digest assembly with
                  | Some d -> d
                  | None -> Femto_crypto.Crypto.sha256 payload
                in
                s.finish ~src ~digest ~size:(String.length payload) full)
      in
      { response with
        options =
          Block.to_option ~number:Block.opt_block1 block :: response.options }
  | Block.Out_of_order ->
      Option.iter (fun s -> try s.abort () with _ -> ()) sink;
      Hashtbl.remove t.uploads key;
      respond Message.code_request_entity_incomplete

(* Block2: slice a large response; the handler runs once (block 0) and the
   full payload is cached for the follow-up block requests. *)
and handle_block2 t ~src request num =
  let path = Message.path_string request in
  let key = (src, path) in
  let payload =
    if num = 0 then begin
      let response = run_handler t ~src request in
      if response.code <> Message.code_content then None
      else begin
        Hashtbl.replace t.downloads key response.payload;
        Some (response.payload, response.options)
      end
    end
    else
      Option.map (fun p -> (p, [])) (Hashtbl.find_opt t.downloads key)
  in
  match payload with
  | None ->
      if num = 0 then run_handler t ~src request
      else respond Message.code_request_entity_incomplete
  | Some (full, options) -> (
      match Block.slice ~num ~size:t.block_size full with
      | None -> respond Message.code_bad_request
      | Some (chunk, more) ->
          if not more then Hashtbl.remove t.downloads key;
          respond
            ~options:
              (Block.to_option ~number:Block.opt_block2
                 (Block.make ~num ~more ~size:t.block_size)
              :: List.filter (fun (n, _) -> n <> Block.opt_block2) options)
            ~payload:chunk Message.code_content)

(* RFC 7641: register/deregister the observe relationship carried by a
   GET; the response to a registration echoes an Observe option. *)
and handle_observe t ~src request =
  match (request.Message.code = Message.code_get, Message.observe request) with
  | true, Some 0 ->
      let path = Message.path_string request in
      let entry =
        match Hashtbl.find_opt t.observers path with
        | Some list -> list
        | None ->
            let list = ref [] in
            Hashtbl.replace t.observers path list;
            list
      in
      let key = (src, request.Message.token) in
      if not (List.mem key !entry) then entry := key :: !entry;
      `Registered
  | true, Some 1 ->
      let path = Message.path_string request in
      (match Hashtbl.find_opt t.observers path with
      | Some entry ->
          entry :=
            List.filter
              (fun (a, tok) -> not (a = src && String.equal tok request.Message.token))
              !entry
      | None -> ());
      `Deregistered
  | _, _ -> `Not_observe

(* Shared accounting for Plain handlers and Upload completions: request
   metrics, trace events, exceptions to 5.00 (with sink abort). *)
and run_resource t ~src:_ ~path resource run =
  let trace outcome response =
    if Obs.enabled () then
      Obs.event (fun () ->
          let major, minor = response.code in
          Otrace.Coap_request
            { path; code = Printf.sprintf "%d.%02d" major minor; outcome });
    response
  in
  t.requests_served <- t.requests_served + 1;
  if Obs.enabled () then Ometrics.incr m_requests;
  match run () with
  | response -> trace "ok" response
  | exception _ ->
      (match resource with
      | Upload sink -> ( try sink.abort () with _ -> ())
      | Plain _ | Cached _ -> ());
      if Obs.enabled () then Ometrics.incr m_handler_errors;
      trace "handler_error" (respond Message.code_internal_error)

(* The idempotent-GET fast path: a fresh cache entry answers without
   touching the handler; a miss (or expiry) runs the handler once and
   stores the response with its ETag and Max-Age stamped on. *)
and run_cached t ~src ~path ~handler ~max_age_s request =
  if request.Message.code <> Message.code_get then
    run_resource t ~src ~path (Cached { handler; max_age_s }) (fun () ->
        handler ~src request)
  else
    match Hashtbl.find_opt t.cache path with
    | Some entry when entry.ce_expires > t.now () ->
        t.cache_hits <- t.cache_hits + 1;
        t.requests_served <- t.requests_served + 1;
        if Obs.enabled () then begin
          Ometrics.incr m_requests;
          Ometrics.incr m_cache_hits
        end;
        entry.ce_response
    | Some _ | None ->
        t.cache_misses <- t.cache_misses + 1;
        if Obs.enabled () then Ometrics.incr m_cache_misses;
        let response =
          run_resource t ~src ~path
            (Cached { handler; max_age_s })
            (fun () -> handler ~src request)
        in
        if response.code = Message.code_content then begin
          let etag =
            String.sub (Femto_crypto.Crypto.sha256 response.payload) 0 8
          in
          let response =
            { response with
              options =
                Message.etag_option etag
                :: Message.max_age_option max_age_s
                :: response.options }
          in
          Hashtbl.replace t.cache path
            {
              ce_response = response;
              ce_expires = t.now () +. float_of_int max_age_s;
            };
          response
        end
        else response

and run_handler t ~src request =
  let path = Message.path_string request in
  match Hashtbl.find_opt t.resources path with
  | Some (Plain handler) ->
      run_resource t ~src ~path (Plain handler) (fun () -> handler ~src request)
  | Some (Cached { handler; max_age_s }) ->
      run_cached t ~src ~path ~handler ~max_age_s request
  | Some (Upload sink) ->
      (* single-datagram upload (no Block1): drive the sink in one shot *)
      run_resource t ~src ~path (Upload sink) (fun () ->
          sink.start ();
          sink.chunk request.Message.payload;
          sink.finish ~src
            ~digest:(Femto_crypto.Crypto.sha256 request.Message.payload)
            ~size:(String.length request.Message.payload)
            request)
  | None ->
      t.not_found <- t.not_found + 1;
      if Obs.enabled () then begin
        Ometrics.incr m_requests;
        Ometrics.incr m_not_found
      end;
      if Obs.enabled () then
        Obs.event (fun () ->
            Otrace.Coap_request { path; code = "4.04"; outcome = "not_found" });
      respond Message.code_not_found

and dispatch t ~src request =
  match Block.of_message ~number:Block.opt_block1 request with
  | Some block -> handle_block1 t ~src request block
  | None -> (
      match Block.of_message ~number:Block.opt_block2 request with
      | Some block -> handle_block2 t ~src request block.Block.num
      | None ->
          let observe_status = handle_observe t ~src request in
          let response = run_handler t ~src request in
          let response =
            match observe_status with
            | `Registered when response.code = Message.code_content ->
                { response with
                  options = Message.observe_option 1 :: response.options }
            | `Registered | `Deregistered | `Not_observe -> response
          in
          (* unsolicited large responses switch to Block2 automatically *)
          if
            String.length response.payload > t.block_size
            && response.code = Message.code_content
          then begin
            let key = (src, Message.path_string request) in
            Hashtbl.replace t.downloads key response.payload;
            match Block.slice ~num:0 ~size:t.block_size response.payload with
            | Some (chunk, more) ->
                { response with
                  payload = chunk;
                  options =
                    Block.to_option ~number:Block.opt_block2
                      (Block.make ~num:0 ~more ~size:t.block_size)
                    :: response.options }
            | None -> response
          end
          else response)

(* Transport entry point: one datagram in, zero or one reply out through
   [t.send].  Malformed input is dropped silently, as RFC 7252 wants for
   unparseable messages. *)
let handle_datagram_sub t ~src data ~off ~len =
  match Message.decode_sub data ~off ~len with
  | exception Message.Parse_error _ -> ()
  | request -> handle t ~src request

let handle_datagram t ~src data =
  handle_datagram_sub t ~src data ~off:0 ~len:(Bytes.length data)

let create ?block_size ?dedupe_capacity ~network ~addr () =
  let t =
    create_detached ?block_size ?dedupe_capacity ~addr
      ~send:(fun ~dst:_ _ -> ())
      ()
  in
  t.send <- (fun ~dst data -> Network.send network ~src:addr ~dst data);
  let node = Network.add_node network ~addr in
  Network.set_receiver node (fun ~src datagram ->
      handle_datagram t ~src datagram);
  t

let set_send t send = t.send <- send
let send_fn t = t.send
let set_time_source t now = t.now <- now

let register t ~path handler = Hashtbl.replace t.resources path (Plain handler)

let register_cached ?(max_age_s = 60) t ~path handler =
  Hashtbl.replace t.resources path (Cached { handler; max_age_s })

let register_upload t ~path sink = Hashtbl.replace t.resources path (Upload sink)

let invalidate t ~path = Hashtbl.remove t.cache path

let addr t = t.addr
let requests_served t = t.requests_served
let dedupe_evictions t = t.dedupe_evictions
let cache_stats t = (t.cache_hits, t.cache_misses)

(* Insert [token] into a notification encoded with an empty token: the
   header's TKL nibble is patched and the token bytes spliced in after
   the 4-byte header — cheap blits, no per-observer re-encode. *)
let splice_token base ~token =
  let tkl = String.length token in
  if tkl = 0 then base
  else begin
    let len = Bytes.length base in
    let out = Bytes.create (len + tkl) in
    Bytes.blit base 0 out 0 4;
    Bytes.set out 0 (Char.chr (Char.code (Bytes.get base 0) lor tkl));
    Bytes.blit_string token 0 out 4 tkl;
    Bytes.blit base 4 out (4 + tkl) (len - 4);
    out
  end

(* [notify t ~path] re-evaluates the resource once, encodes the
   notification once (empty token), and fans it out to every registered
   observer with only the per-observer token spliced in — RFC 7641
   server-side, one handler run and one encode for N sends. *)
let notify t ~path =
  match Hashtbl.find_opt t.observers path with
  | None -> 0
  | Some entry when !entry = [] -> 0
  | Some entry ->
      t.observe_seq <- t.observe_seq + 1;
      invalidate t ~path; (* the resource changed: cached reads are stale *)
      if Obs.enabled () then begin
        Ometrics.add m_notifications (List.length !entry);
        Ometrics.incr m_notify_encodes
      end;
      let synthetic =
        Message.make
          ~options:(Message.options_of_path path)
          ~code:Message.code_get ~message_id:0 ()
      in
      let response = run_handler t ~src:(fst (List.hd !entry)) synthetic in
      let base =
        Message.encode
          (Message.make ~msg_type:Message.Non_confirmable
             ~options:(Message.observe_option t.observe_seq :: response.options)
             ~payload:response.payload ~code:response.code
             ~message_id:(0x8000 lor t.observe_seq land 0xFFFF) ())
      in
      List.iter
        (fun (dst, token) -> t.send ~dst (splice_token base ~token))
        !entry;
      List.length !entry

let observer_count t ~path =
  match Hashtbl.find_opt t.observers path with
  | Some entry -> List.length !entry
  | None -> 0
