(* CoAP resource server bound to a simulated network node.

   Resources are registered by path; confirmable requests are answered
   with piggybacked acknowledgements, as gcoap does in RIOT.  Handlers
   return a (code, options, payload) triple — or delegate to a
   Femto-Container through the [Gcoap] glue. *)

module Network = Femto_net.Network
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* CoAP-server metrics across all server instances; per-request outcome
   detail goes to the trace ring as Coap_request events. *)
let m_requests = Obs.counter "coap.requests"
let m_not_found = Obs.counter "coap.not_found"
let m_handler_errors = Obs.counter "coap.handler_errors"
let m_retransmissions = Obs.counter "coap.retransmissions"
let m_notifications = Obs.counter "coap.notifications"

type response = { code : int * int; options : (int * string) list; payload : string }

let respond ?(options = []) ?(payload = "") code = { code; options; payload }

type handler = src:int -> Message.t -> response

(* A streaming upload consumer: Block1 chunks are pushed into [chunk] as
   they arrive (so flash programming and digest work overlap the
   transfer), and [finish] runs when the final block lands, with the
   streaming SHA-256 and total size already computed.  [abort] must be
   idempotent: it also fires for out-of-order restarts that never saw
   [start]. *)
type sink = {
  start : unit -> unit;
  chunk : string -> unit;
  finish : src:int -> digest:string -> size:int -> Message.t -> response;
  abort : unit -> unit;
}

type resource = Plain of handler | Upload of sink

type t = {
  network : Network.t;
  node : Network.node;
  resources : (string, resource) Hashtbl.t;
  mutable requests_served : int;
  mutable not_found : int;
  (* message-id deduplication: CON retransmissions of a request we already
     answered get the cached response again *)
  recent : (int * int, Message.t) Hashtbl.t; (* (src, mid) -> response *)
  (* RFC 7959 state: Block1 reassembly per (src, path), and the full
     payload of an in-progress Block2 download per (src, path) *)
  uploads : (int * string, Block.assembly) Hashtbl.t;
  downloads : (int * string, string) Hashtbl.t;
  block_size : int;
  (* RFC 7641 observe relationships: path -> (observer addr, token) *)
  observers : (string, (int * string) list ref) Hashtbl.t;
  mutable observe_seq : int;
}

let rec create ?(block_size = 64) ~network ~addr () =
  let node = Network.add_node network ~addr in
  let t =
    {
      network;
      node;
      resources = Hashtbl.create 8;
      requests_served = 0;
      not_found = 0;
      recent = Hashtbl.create 16;
      uploads = Hashtbl.create 4;
      downloads = Hashtbl.create 4;
      block_size;
      observers = Hashtbl.create 4;
      observe_seq = 2;
    }
  in
  Network.set_receiver node (fun ~src datagram ->
      match Message.decode datagram with
      | exception Message.Parse_error _ -> () (* malformed: drop silently *)
      | request -> handle t ~src request);
  t

and handle t ~src request =
  match request.Message.msg_type with
  | Message.Acknowledgement | Message.Reset -> ()
  | Message.Confirmable | Message.Non_confirmable -> (
      let key = (src, request.Message.message_id) in
      match Hashtbl.find_opt t.recent key with
      | Some cached ->
          if Obs.enabled () then Ometrics.incr m_retransmissions;
          Network.send t.network ~src:t.node.Network.addr ~dst:src
            (Message.encode cached)
      | None ->
          let response = dispatch t ~src request in
          let reply =
            Message.make
              ~msg_type:
                (match request.Message.msg_type with
                | Message.Confirmable -> Message.Acknowledgement
                | _ -> Message.Non_confirmable)
              ~token:request.Message.token ~options:response.options
              ~payload:response.payload ~code:response.code
              ~message_id:request.Message.message_id ()
          in
          Hashtbl.replace t.recent key reply;
          if Hashtbl.length t.recent > 64 then Hashtbl.reset t.recent;
          Network.send t.network ~src:t.node.Network.addr ~dst:src
            (Message.encode reply))

(* Block1: accumulate upload blocks.  For Plain resources the handler
   only runs when the final block arrives, with the reassembled payload;
   for Upload sinks every chunk is pushed as it lands (streaming flash
   writes) with an incremental SHA-256 running alongside, and [finish]
   fires together with the last block — digest and storage writes
   complete with the transfer. *)
and handle_block1 t ~src request block =
  let path = Message.path_string request in
  let key = (src, path) in
  let sink =
    match Hashtbl.find_opt t.resources path with
    | Some (Upload s) -> Some s
    | Some (Plain _) | None -> None
  in
  let assembly =
    match Hashtbl.find_opt t.uploads key with
    | Some a when block.Block.num > 0 -> a
    | _ ->
        let a = Block.create_assembly ~digest:(sink <> None) () in
        Hashtbl.replace t.uploads key a;
        if block.Block.num = 0 then
          Option.iter (fun s -> s.start ()) sink;
        a
  in
  match Block.feed assembly block request.Message.payload with
  | Block.Continue -> (
      match sink with
      | None ->
          respond
            ~options:[ Block.to_option ~number:Block.opt_block1 block ]
            Message.code_continue
      | Some s -> (
          match s.chunk request.Message.payload with
          | () ->
              respond
                ~options:[ Block.to_option ~number:Block.opt_block1 block ]
                Message.code_continue
          | exception _ ->
              (try s.abort () with _ -> ());
              Hashtbl.remove t.uploads key;
              if Obs.enabled () then Ometrics.incr m_handler_errors;
              respond Message.code_internal_error))
  | Block.Complete payload ->
      Hashtbl.remove t.uploads key;
      let full = { request with Message.payload } in
      let response =
        match sink with
        | None -> run_handler t ~src full
        | Some s ->
            run_resource t ~src ~path (Upload s) (fun () ->
                s.chunk request.Message.payload;
                let digest =
                  match Block.finalize_digest assembly with
                  | Some d -> d
                  | None -> Femto_crypto.Crypto.sha256 payload
                in
                s.finish ~src ~digest ~size:(String.length payload) full)
      in
      { response with
        options =
          Block.to_option ~number:Block.opt_block1 block :: response.options }
  | Block.Out_of_order ->
      Option.iter (fun s -> try s.abort () with _ -> ()) sink;
      Hashtbl.remove t.uploads key;
      respond Message.code_request_entity_incomplete

(* Block2: slice a large response; the handler runs once (block 0) and the
   full payload is cached for the follow-up block requests. *)
and handle_block2 t ~src request num =
  let path = Message.path_string request in
  let key = (src, path) in
  let payload =
    if num = 0 then begin
      let response = run_handler t ~src request in
      if response.code <> Message.code_content then None
      else begin
        Hashtbl.replace t.downloads key response.payload;
        Some (response.payload, response.options)
      end
    end
    else
      Option.map (fun p -> (p, [])) (Hashtbl.find_opt t.downloads key)
  in
  match payload with
  | None ->
      if num = 0 then run_handler t ~src request
      else respond Message.code_request_entity_incomplete
  | Some (full, options) -> (
      match Block.slice ~num ~size:t.block_size full with
      | None -> respond Message.code_bad_request
      | Some (chunk, more) ->
          if not more then Hashtbl.remove t.downloads key;
          respond
            ~options:
              (Block.to_option ~number:Block.opt_block2
                 (Block.make ~num ~more ~size:t.block_size)
              :: List.filter (fun (n, _) -> n <> Block.opt_block2) options)
            ~payload:chunk Message.code_content)

(* RFC 7641: register/deregister the observe relationship carried by a
   GET; the response to a registration echoes an Observe option. *)
and handle_observe t ~src request =
  match (request.Message.code = Message.code_get, Message.observe request) with
  | true, Some 0 ->
      let path = Message.path_string request in
      let entry =
        match Hashtbl.find_opt t.observers path with
        | Some list -> list
        | None ->
            let list = ref [] in
            Hashtbl.replace t.observers path list;
            list
      in
      let key = (src, request.Message.token) in
      if not (List.mem key !entry) then entry := key :: !entry;
      `Registered
  | true, Some 1 ->
      let path = Message.path_string request in
      (match Hashtbl.find_opt t.observers path with
      | Some entry ->
          entry :=
            List.filter
              (fun (a, tok) -> not (a = src && String.equal tok request.Message.token))
              !entry
      | None -> ());
      `Deregistered
  | _, _ -> `Not_observe

(* Shared accounting for Plain handlers and Upload completions: request
   metrics, trace events, exceptions to 5.00 (with sink abort). *)
and run_resource t ~src:_ ~path resource run =
  let trace outcome response =
    if Obs.enabled () then
      Obs.event (fun () ->
          let major, minor = response.code in
          Otrace.Coap_request
            { path; code = Printf.sprintf "%d.%02d" major minor; outcome });
    response
  in
  t.requests_served <- t.requests_served + 1;
  if Obs.enabled () then Ometrics.incr m_requests;
  match run () with
  | response -> trace "ok" response
  | exception _ ->
      (match resource with
      | Upload sink -> ( try sink.abort () with _ -> ())
      | Plain _ -> ());
      if Obs.enabled () then Ometrics.incr m_handler_errors;
      trace "handler_error" (respond Message.code_internal_error)

and run_handler t ~src request =
  let path = Message.path_string request in
  match Hashtbl.find_opt t.resources path with
  | Some (Plain handler) ->
      run_resource t ~src ~path (Plain handler) (fun () -> handler ~src request)
  | Some (Upload sink) ->
      (* single-datagram upload (no Block1): drive the sink in one shot *)
      run_resource t ~src ~path (Upload sink) (fun () ->
          sink.start ();
          sink.chunk request.Message.payload;
          sink.finish ~src
            ~digest:(Femto_crypto.Crypto.sha256 request.Message.payload)
            ~size:(String.length request.Message.payload)
            request)
  | None ->
      t.not_found <- t.not_found + 1;
      if Obs.enabled () then begin
        Ometrics.incr m_requests;
        Ometrics.incr m_not_found
      end;
      if Obs.enabled () then
        Obs.event (fun () ->
            Otrace.Coap_request { path; code = "4.04"; outcome = "not_found" });
      respond Message.code_not_found

and dispatch t ~src request =
  match Block.of_message ~number:Block.opt_block1 request with
  | Some block -> handle_block1 t ~src request block
  | None -> (
      match Block.of_message ~number:Block.opt_block2 request with
      | Some block -> handle_block2 t ~src request block.Block.num
      | None ->
          let observe_status = handle_observe t ~src request in
          let response = run_handler t ~src request in
          let response =
            match observe_status with
            | `Registered when response.code = Message.code_content ->
                { response with
                  options = Message.observe_option 1 :: response.options }
            | `Registered | `Deregistered | `Not_observe -> response
          in
          (* unsolicited large responses switch to Block2 automatically *)
          if
            String.length response.payload > t.block_size
            && response.code = Message.code_content
          then begin
            let key = (src, Message.path_string request) in
            Hashtbl.replace t.downloads key response.payload;
            match Block.slice ~num:0 ~size:t.block_size response.payload with
            | Some (chunk, more) ->
                { response with
                  payload = chunk;
                  options =
                    Block.to_option ~number:Block.opt_block2
                      (Block.make ~num:0 ~more ~size:t.block_size)
                    :: response.options }
            | None -> response
          end
          else response)

let register t ~path handler = Hashtbl.replace t.resources path (Plain handler)
let register_upload t ~path sink = Hashtbl.replace t.resources path (Upload sink)
let addr t = t.node.Network.addr
let requests_served t = t.requests_served

(* [notify t ~path] re-evaluates the resource and pushes a
   non-confirmable notification (with an increasing Observe sequence) to
   every registered observer — RFC 7641 server-side. *)
let notify t ~path =
  match Hashtbl.find_opt t.observers path with
  | None -> 0
  | Some entry ->
      t.observe_seq <- t.observe_seq + 1;
      if Obs.enabled () then Ometrics.add m_notifications (List.length !entry);
      List.iter
        (fun (dst, token) ->
          let synthetic =
            Message.make ~token
              ~options:(Message.options_of_path path)
              ~code:Message.code_get ~message_id:0 ()
          in
          let response = run_handler t ~src:dst synthetic in
          let notification =
            Message.make ~msg_type:Message.Non_confirmable ~token
              ~options:(Message.observe_option t.observe_seq :: response.options)
              ~payload:response.payload ~code:response.code
              ~message_id:(0x8000 lor t.observe_seq land 0xFFFF) ()
          in
          Network.send t.network ~src:t.node.Network.addr ~dst
            (Message.encode notification))
        !entry;
      List.length !entry

let observer_count t ~path =
  match Hashtbl.find_opt t.observers path with
  | Some entry -> List.length !entry
  | None -> 0
