(* A Femto-Container: a verified program plus its sandbox state.

   A container belongs to a tenant, declares a contract, and — once
   attached to a hook — owns a VM instance (optimized or CertFC), its
   private key-value store and its execution statistics.  All state is
   local to the instance (paper §10.3), which is what makes running many
   containers side by side cheap. *)

open Femto_ebpf
module Fault = Femto_vm.Fault

type instance =
  | Fc_instance of Femto_vm.Vm.t
  | Certfc_instance of Femto_certfc.Certfc.t

type t = {
  name : string;
  tenant : Tenant.t;
  mutable program : Program.t;
  contract : Contract.t;
  runtime : Femto_platform.Platform.engine;
  mutable local_store : Kvstore.t;
      (* mutable: an image-spawned instance swaps in a copy-on-write
         view over the image's frozen baseline *)
  mutable attached_to : string option; (* hook uuid *)
  mutable instance : instance option;
  mutable executions : int;
  mutable faults : int;
  mutable total_vm_cycles : int;
  mutable last_result : (int64, Fault.t) result option;
  mutable prepare_run : unit -> unit;
      (* runs before each execution; image-spawned instances use it to
         re-point the image's forward kv stores at their own stores
         (the engine is single-threaded, so rebind-per-run is safe) *)
}

let create ~name ~tenant ~contract
    ?(runtime = Femto_platform.Platform.Fc) program =
  {
    name;
    tenant;
    program;
    contract;
    runtime;
    local_store = Kvstore.create (Printf.sprintf "local:%s" name);
    attached_to = None;
    instance = None;
    executions = 0;
    faults = 0;
    total_vm_cycles = 0;
    last_result = None;
    prepare_run = ignore;
  }

let name t = t.name
let tenant t = t.tenant
let program t = t.program
let bytecode_size t = Program.byte_size t.program
let attached_to t = t.attached_to
let executions t = t.executions
let faults t = t.faults
let total_vm_cycles t = t.total_vm_cycles
let last_result t = t.last_result
let local_store t = t.local_store
let set_local_store t store = t.local_store <- store
let set_prepare_run t f = t.prepare_run <- f

let run_instance ?(args = [||]) t =
  t.prepare_run ();
  match t.instance with
  | None -> Error (Fault.Helper_error { pc = 0; id = 0; message = "not attached" })
  | Some (Fc_instance vm) ->
      let result = Femto_vm.Vm.run vm ~args in
      t.total_vm_cycles <-
        t.total_vm_cycles + (Femto_vm.Vm.stats vm).Femto_vm.Interp.cycles;
      result
  | Some (Certfc_instance vm) ->
      let result = Femto_certfc.Certfc.run vm ~args in
      (match Femto_certfc.Certfc.last_state vm with
      | Some state ->
          t.total_vm_cycles <-
            t.total_vm_cycles + state.Femto_certfc.Interp.cycles
      | None -> ());
      result

(* Cycles of the most recent execution only. *)
let last_run_cycles t =
  match t.instance with
  | None -> 0
  | Some (Fc_instance vm) -> (Femto_vm.Vm.stats vm).Femto_vm.Interp.cycles
  | Some (Certfc_instance vm) -> (
      match Femto_certfc.Certfc.last_state vm with
      | Some state -> state.Femto_certfc.Interp.cycles
      | None -> 0)
