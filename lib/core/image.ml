(* Container image: the immutable, shareable product of one cold attach.

   One image captures everything the expensive load path produces —
   verified bytecode, the analyzer's proofs and diagnostics, the
   superblock IR and the compiled closure artifact (all inside
   [Femto_vm.Vm.image]) — plus the frozen local-store baseline and the
   forward kv indirections its helper table was compiled against.
   Instances spawned from it privately own only their stack window, the
   interpreter run state and a copy-on-write kv delta; everything else
   is shared by reference, which is what makes spawning thousands of
   residents nearly free.

   Images are keyed by content hash (program bytes + runtime + the
   sorted capability names actually granted at the hook), so two
   containers with the same program but different privilege sets get
   distinct images — the helper table is part of the artifact. *)

type t = {
  key : string; (* hex sha-256; the image-cache key *)
  runtime : Femto_platform.Platform.engine;
  vm_image : Femto_vm.Vm.image;
  outcome : Femto_analysis.Analysis.outcome option;
      (* analyzer proofs/diagnostics, attached once at image build (Fc
         runtime only: Rbpf loads through the plain checked loader) *)
  baseline : Kvstore.t;
      (* frozen snapshot of the local store at image build; every
         spawned instance's CoW local store reads through it *)
  local_fwd : Kvstore.t;
  tenant_fwd : Kvstore.t;
  global_fwd : Kvstore.t;
      (* the forward stores the image's helper table was compiled
         against: re-pointed at the running instance's stores before
         each dispatch.  A fleet shares one image across many engines
         (one per device), so the global store forwards too.  Binding is
         per-dispatch and unsynchronized: an image must only ever be
         dispatched from one domain — fleet shards own disjoint image
         caches, which enforces this. *)
  dyn : Syscall.dyn ref;
      (* the engine-side time/sensor/trace closures, re-pointed with the
         stores — the helper table dereferences the ref on each call *)
  mutable spawns : int; (* instances spawned from this image *)
}

(* Program digests are memoized by physical identity: spawning reuses
   the same [Program.t] value, and hashing kilobytes of bytecode on
   every spawn would dwarf the spawn itself.  The ephemeron keeps the
   cache from pinning dead programs; distinct-but-equal program values
   merely hash twice to the same digest. *)
module Digest_cache = Ephemeron.K1.Make (struct
  type t = Femto_ebpf.Program.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let digests = Digest_cache.create 16

(* The ephemeron table is process-global while fleet shards spawn from
   worker domains concurrently, so its structural mutation is locked.
   The lock is outside the MRU fast path: a warm spawn never takes it. *)
let digests_mutex = Mutex.create ()

(* One-entry MRU in front of the ephemeron: [Digest_cache.find_opt]
   pays a structural [Hashtbl.hash] walk over the program on every
   lookup, while the common case — spawning many instances of one
   program — needs only a pointer compare.  Cross-domain races on the
   ref are benign: a single atomic pointer read/write of an immutable
   pair, worst case a wasted recompute. *)
let last_digest : (Femto_ebpf.Program.t * string) option ref = ref None

let program_digest program =
  match !last_digest with
  | Some (p, d) when p == program -> d
  | _ ->
      let d =
        Mutex.protect digests_mutex (fun () ->
            match Digest_cache.find_opt digests program with
            | Some d -> d
            | None ->
                let d =
                  Femto_crypto.Crypto.to_hex
                    (Femto_crypto.Crypto.sha256
                       (Bytes.unsafe_to_string
                          (Femto_ebpf.Program.to_bytes program)))
                in
                Digest_cache.replace digests program d;
                d)
      in
      last_digest := Some (program, d);
      d

(* Deterministic cache key: program content hash, runtime, and the
   granted capability names (sorted — grant order is a policy detail).
   The short runtime/capability components ride along in the clear; only
   the bytecode needs hashing. *)
let key_of ~runtime ~granted program =
  let caps =
    List.sort String.compare (List.map Contract.capability_name granted)
  in
  String.concat ":"
    (program_digest program
    :: Femto_platform.Platform.engine_name runtime
    :: caps)

let create ~key ~runtime ~vm_image ~outcome ~baseline ~local_fwd ~tenant_fwd
    ~global_fwd ~dyn =
  {
    key;
    runtime;
    vm_image;
    outcome;
    baseline;
    local_fwd;
    tenant_fwd;
    global_fwd;
    dyn;
    spawns = 0;
  }

let key t = t.key
let runtime t = t.runtime
let vm_image t = t.vm_image
let outcome t = t.outcome
let baseline t = t.baseline
let spawns t = t.spawns
let record_spawn t = t.spawns <- t.spawns + 1

(* Re-point the image's forward kv stores and dynamic facilities at one
   instance (and its engine).  Called from the instance's [prepare_run]
   hook before each execution; four pointer writes. *)
let bind t ~local ~tenant ~global ~dyn =
  Kvstore.retarget t.local_fwd local;
  Kvstore.retarget t.tenant_fwd tenant;
  Kvstore.retarget t.global_fwd global;
  t.dyn := dyn

let proven t = Femto_vm.Vm.image_proven t.vm_image
let tier t = Femto_vm.Vm.image_tier t.vm_image
