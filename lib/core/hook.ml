(* Hooks — the pre-provisioned launch pads of the paper (§7, Listing 1).

   A hook is compiled into the firmware at a fixed spot (scheduler switch,
   timer expiry, packet reception...).  It owns a context buffer that the
   firmware fills before triggering, exposed to every attached container as
   a memory region at a fixed virtual address with the hook's permission
   (e.g. read-only for a firewall-style packet inspector).  Containers are
   addressed to hooks by UUID — the same identifier SUIT manifests use as
   storage location. *)

module Region = Femto_vm.Region

(* Virtual address at which every container sees its hook context. *)
let ctx_vaddr = 0x2000_0000L

type t = {
  uuid : string;
  name : string;
  ctx_size : int;
  ctx_perm : Region.perm;
  ctx_data : bytes; (* shared backing: the launchpad's context struct *)
  policy : Contract.policy;
  (* §11 "dynamic privilege levels": the paper's design has one fixed
     privilege set per hook and needs a second hook when two tenants
     differ; per-tenant overrides lift that limitation *)
  mutable tenant_policies : (string * Contract.policy) list;
  (* Attached containers in attach order, array-backed so attach is
     amortized O(1) (the list-append version rebuilt the list per
     attach) and the fire path can iterate without allocating.  Slots
     [0, attached_n) hold [Some c]; the tail is [None]. *)
  mutable slots : Container.t option array;
  mutable attached_n : int;
  mutable triggers : int;
}

let create ~uuid ~name ~ctx_size ?(ctx_perm = Region.Read_only)
    ?(policy = Contract.offer_all) () =
  {
    uuid;
    name;
    ctx_size;
    ctx_perm;
    ctx_data = Bytes.make ctx_size '\000';
    policy;
    tenant_policies = [];
    slots = [||];
    attached_n = 0;
    triggers = 0;
  }

let uuid t = t.uuid
let name t = t.name
let policy t = t.policy

(* [set_tenant_policy] narrows (or widens, within the engine's limits)
   what one tenant may be granted at this hook. *)
let set_tenant_policy t ~tenant_id policy =
  t.tenant_policies <-
    (tenant_id, policy) :: List.remove_assoc tenant_id t.tenant_policies

(* The policy applying to [tenant_id]: its override, else the hook's. *)
let policy_for t ~tenant_id =
  match List.assoc_opt tenant_id t.tenant_policies with
  | Some policy -> policy
  | None -> t.policy
(* Attach-order list view (compat for shell/tests); the engine's hot
   path uses [attached_count]/[attached_get] to avoid building it. *)
let attached t =
  List.init t.attached_n (fun i ->
      match t.slots.(i) with Some c -> c | None -> assert false)

let attached_count t = t.attached_n
let attached_get t i = t.slots.(i)

let append_attached t container =
  let cap = Array.length t.slots in
  if t.attached_n = cap then begin
    let grown = Array.make (max 4 (2 * cap)) None in
    Array.blit t.slots 0 grown 0 cap;
    t.slots <- grown
  end;
  t.slots.(t.attached_n) <- Some container;
  t.attached_n <- t.attached_n + 1

let remove_attached t container =
  let n = t.attached_n in
  let j = ref 0 in
  for i = 0 to n - 1 do
    match t.slots.(i) with
    | Some c when c == container -> ()
    | slot ->
        t.slots.(!j) <- slot;
        incr j
  done;
  Array.fill t.slots !j (n - !j) None;
  t.attached_n <- !j

let triggers t = t.triggers
let ctx_data t = t.ctx_data

(* The context region handed to an attaching container: same backing bytes
   for all containers on the hook, permission set by the launchpad. *)
let ctx_region t =
  Region.make ~name:(Printf.sprintf "ctx:%s" t.name) ~vaddr:ctx_vaddr
    ~perm:t.ctx_perm t.ctx_data

let set_ctx t ctx =
  let len = Bytes.length ctx in
  if len > t.ctx_size then invalid_arg "Hook.set_ctx: context too large";
  Bytes.fill t.ctx_data 0 t.ctx_size '\000';
  Bytes.blit ctx 0 t.ctx_data 0 len
