(* The Femto-Container hosting engine.

   Owns the hooks, tenants and device-global key-value store; attaches
   containers to hooks (building their capability-gated helper tables and
   verifying their bytecode — the cold-start step), and dispatches hook
   triggers to every attached container with full fault isolation: a
   faulting container is reported and counted, the OS and its neighbours
   carry on (paper §5, §7). *)

module Fault = Femto_vm.Fault
module Region = Femto_vm.Region
module Helper = Femto_vm.Helper
module Platform = Femto_platform.Platform
module Kernel = Femto_rtos.Kernel
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* Engine-level metrics: hook dispatch counts and latency (Table 4's
   subject), and container faults as seen by the isolation boundary. *)
let m_hook_fires = Obs.counter "engine.hook_fires"
let m_container_runs = Obs.counter "engine.container_runs"
let m_container_faults = Obs.counter "engine.container_faults"
let m_attaches = Obs.counter "engine.attaches"
let m_attach_rejected = Obs.counter "engine.attach_rejected"
let m_hook_ns = Obs.histogram "engine.hook_ns"
let m_pool_hits = Obs.counter "engine.pool_hits"
let m_pool_resets = Obs.counter "engine.pool_resets"

(* Image-cache metrics: the spawn path's subject.  A hit spawns without
   verification, analysis or compilation; a miss pays the full cold
   attach once and caches the artifact. *)
let m_image_hits = Obs.counter "engine.image_hits"
let m_image_misses = Obs.counter "engine.image_misses"
let m_spawns = Obs.counter "engine.spawns"
let g_image_words = Obs.gauge "vm.image_words"
let g_instance_words = Obs.gauge "engine.instance_words"

type t = {
  platform : Platform.t;
  kernel : Kernel.t option;
  clock : Femto_rtos.Clock.t option;
      (* kernel-less cycle clock: a fleet device owns a clock but no
         kernel (its shard's kernel drives the wheel); VM cycle costs
         are charged here and the time helpers read it *)
  global_store : Kvstore.t;
  tenants : (string, Tenant.t) Hashtbl.t;
  hooks : (string, Hook.t) Hashtbl.t;
  images : (string, Image.t) Hashtbl.t; (* content-hash → container image *)
  sensors : (int, unit -> (int64, string) result) Hashtbl.t;
  mutable extra_helpers : (Contract.capability * (Helper.t -> unit)) list;
  (* refs, not mutable fields: the facility closures handed to helper
     tables must not capture the engine record itself, or every cached
     image would transitively reach every attached container and the
     footprint accounting (shared image vs private instance) would
     collapse into one blob *)
  trace_log : int64 list ref; (* newest first; bpf_trace output *)
  fallback_ms : int64 ref; (* time source when no kernel is attached *)
  config : Femto_vm.Config.t;
  tier : Femto_vm.Vm.tier; (* execution tier for Fc containers *)
  mutable dyn_cache : Syscall.dyn option;
      (* the engine's time/sensor/trace closures, built once: every
         spawn on this engine binds the same dyn record *)
}

(* [images] shares an image cache across engines: the fleet passes one
   table per shard so a thousand devices on the same firmware build one
   image.  Callers sharing a table must dispatch all its engines from a
   single domain (see the binding comment in image.ml). *)
let create ?(platform = Platform.cortex_m4) ?kernel ?clock ?images
    ?(config = Femto_vm.Config.default) ?(tier = Femto_vm.Vm.Ir) () =
  {
    platform;
    kernel;
    clock;
    global_store = Kvstore.create "global";
    tenants = Hashtbl.create 4;
    hooks = Hashtbl.create 8;
    images = (match images with Some t -> t | None -> Hashtbl.create 8);
    sensors = Hashtbl.create 4;
    extra_helpers = [];
    trace_log = ref [];
    fallback_ms = ref 0L;
    config;
    tier;
    dyn_cache = None;
  }

let platform t = t.platform
let kernel t = t.kernel
let device_clock t = t.clock
let global_store t = t.global_store
let trace_log t = List.rev !(t.trace_log)

(* --- tenants --- *)

let add_tenant t id =
  match Hashtbl.find_opt t.tenants id with
  | Some tenant -> tenant
  | None ->
      let tenant = Tenant.create id in
      Hashtbl.replace t.tenants id tenant;
      tenant

let tenants t = Hashtbl.fold (fun _ tenant acc -> tenant :: acc) t.tenants []

(* --- hooks --- *)

let register_hook t ~uuid ~name ~ctx_size ?ctx_perm ?policy () =
  if Hashtbl.mem t.hooks uuid then
    invalid_arg (Printf.sprintf "hook %s already registered" uuid);
  let hook = Hook.create ~uuid ~name ~ctx_size ?ctx_perm ?policy () in
  Hashtbl.replace t.hooks uuid hook;
  hook

let find_hook t uuid = Hashtbl.find_opt t.hooks uuid
let hooks t = Hashtbl.fold (fun _ hook acc -> hook :: acc) t.hooks []

(* --- facilities --- *)

let register_sensor t ~id read = Hashtbl.replace t.sensors id read

let add_helper_installer t capability install =
  t.extra_helpers <- t.extra_helpers @ [ (capability, install) ]

let advance_fallback_ms t ms = t.fallback_ms := Int64.add !(t.fallback_ms) ms

(* The engine's dynamic facilities (time, sensors, trace), built once
   and shared by every helper table and image binding on this engine.
   The closures capture only what they need — never [t] itself (see the
   [trace_log]/[fallback_ms] comment on the engine record). *)
let dyn_for t =
  match t.dyn_cache with
  | Some dyn -> dyn
  | None ->
      let kernel = t.kernel in
      let clock = t.clock in
      let fallback_ms = t.fallback_ms in
      let sensors = t.sensors in
      let trace_log = t.trace_log in
      let dyn =
        {
          Syscall.d_now_ms =
            (fun () ->
              match (kernel, clock) with
              | Some kernel, _ ->
                  Int64.of_float (Femto_rtos.Kernel.now_us kernel /. 1000.0)
              | None, Some clock ->
                  Int64.of_float
                    (Femto_rtos.Clock.ms_of_cycles clock
                       (Femto_rtos.Clock.now clock))
              | None, None -> !fallback_ms);
          d_ticks =
            (fun () ->
              match (kernel, clock) with
              | Some kernel, _ -> Femto_rtos.Kernel.now kernel
              | None, Some clock -> Femto_rtos.Clock.now clock
              | None, None -> Int64.mul !fallback_ms 64_000L);
          d_read_sensor =
            (fun id ->
              match Hashtbl.find_opt sensors id with
              | Some read -> read ()
              | None -> Error (Printf.sprintf "no sensor %d" id));
          d_trace = (fun v -> trace_log := v :: !trace_log);
        }
      in
      t.dyn_cache <- Some dyn;
      dyn

let facilities_for t container =
  let dyn = dyn_for t in
  {
    Syscall.local_store = Container.local_store container;
    tenant_store = Tenant.store (Container.tenant container);
    global_store = t.global_store;
    now_ms = dyn.Syscall.d_now_ms;
    ticks = dyn.Syscall.d_ticks;
    read_sensor = dyn.Syscall.d_read_sensor;
    trace = dyn.Syscall.d_trace;
  }

(* Helper table for [container] at [hook]: contract ∩ the policy applying
   to the container's tenant (per-tenant overrides support different
   privilege sets on one hook — the §11 extension). *)
let helpers_for t hook container =
  let policy =
    Hook.policy_for hook
      ~tenant_id:(Tenant.id (Container.tenant container))
  in
  let granted = Contract.grant policy container.Container.contract in
  Syscall.build ~extra:t.extra_helpers ~granted (facilities_for t container)

(* --- attach / detach (install & update path) --- *)

type attach_error =
  | Verification_failed of Fault.t
  | Already_attached of string
  | No_such_hook of string

let attach_error_to_string = function
  | Verification_failed fault ->
      Printf.sprintf "pre-flight verification failed: %s" (Fault.to_string fault)
  | Already_attached uuid -> Printf.sprintf "already attached to hook %s" uuid
  | No_such_hook uuid -> Printf.sprintf "no hook %s" uuid

(* Instantiate a container's program for its runtime.  The Fc runtime
   loads through the static analyzer on the engine's configured tier
   (default [Ir]: superblock IR compiled one closure per block), so
   fast-path-eligible programs get their proofs; acceptance is unchanged
   (analysis diagnostics never reject — only structural verifier faults
   do).  Rbpf stays on the plain checked loader so the two engines
   remain comparable in the benchmarks. *)
let load_instance t ~cycle_cost ~helpers ~regions runtime program =
  match runtime with
  | Platform.Fc -> (
      match
        Femto_analysis.Analysis.load ~config:t.config ~cycle_cost ~tier:t.tier
          ~helpers ~regions program
      with
      | Ok vm -> Ok (Container.Fc_instance vm)
      | Error fault -> Error fault)
  | Platform.Rbpf -> (
      (* Rbpf models the paper's switch-dispatch baseline: pin it to the
         decoded tier so the two engines stay comparable in benchmarks. *)
      match
        Femto_vm.Vm.load ~config:t.config ~cycle_cost
          ~tier:Femto_vm.Vm.Decoded ~helpers ~regions program
      with
      | Ok vm -> Ok (Container.Fc_instance vm)
      | Error fault -> Error fault)
  | Platform.Certfc -> (
      match
        Femto_certfc.Certfc.load ~config:t.config ~cycle_cost ~helpers ~regions
          program
      with
      | Ok vm -> Ok (Container.Certfc_instance vm)
      | Error fault -> Error fault)

(* [attach] is the paper's install step: build the helper table, run the
   pre-flight checker, and only then instantiate the VM.  Extra regions
   (e.g. a shared packet buffer) may be granted by the launchpad. *)
let attach t ~hook_uuid ?(extra_regions = []) container =
  match Hashtbl.find_opt t.hooks hook_uuid with
  | None -> Error (No_such_hook hook_uuid)
  | Some hook -> (
      match container.Container.attached_to with
      | Some uuid -> Error (Already_attached uuid)
      | None -> (
          let helpers = helpers_for t hook container in
          let regions = Hook.ctx_region hook :: extra_regions in
          let cycle_cost =
            Platform.cycle_cost t.platform container.Container.runtime
          in
          let program = Container.program container in
          let load =
            load_instance t ~cycle_cost ~helpers ~regions
              container.Container.runtime program
          in
          match load with
          | Error fault ->
              if Obs.enabled () then Ometrics.incr m_attach_rejected;
              Error (Verification_failed fault)
          | Ok instance ->
              if Obs.enabled () then Ometrics.incr m_attaches;
              container.Container.instance <- Some instance;
              container.Container.attached_to <- Some hook_uuid;
              Hook.append_attached hook container;
              Ok hook))

let detach t container =
  match container.Container.attached_to with
  | None -> ()
  | Some uuid ->
      (match Hashtbl.find_opt t.hooks uuid with
      | Some hook -> Hook.remove_attached hook container
      | None -> ());
      container.Container.attached_to <- None;
      container.Container.instance <- None;
      Container.set_prepare_run container ignore

(* Hot update: replace the program of an attached container.  The new
   program goes through pre-flight verification first; on failure the old
   program keeps running (the paper's safe-update requirement). *)
let update_program t container program =
  match container.Container.attached_to with
  | None -> Error (No_such_hook "(not attached)")
  | Some hook_uuid -> (
      match Hashtbl.find_opt t.hooks hook_uuid with
      | None -> Error (No_such_hook hook_uuid)
      | Some hook -> (
          let helpers = helpers_for t hook container in
          let regions = [ Hook.ctx_region hook ] in
          let cycle_cost =
            Platform.cycle_cost t.platform container.Container.runtime
          in
          let load =
            load_instance t ~cycle_cost ~helpers ~regions
              container.Container.runtime program
          in
          match load with
          | Error fault -> Error (Verification_failed fault)
          | Ok instance ->
              container.Container.program <- program;
              container.Container.instance <- Some instance;
              (* the fresh instance's helper table captures the current
                 stores directly; any image forward-binding is stale *)
              Container.set_prepare_run container ignore;
              Ok ()))

(* --- image spawn path --- *)

let granted_for hook container =
  let policy =
    Hook.policy_for hook ~tenant_id:(Tenant.id (Container.tenant container))
  in
  Contract.grant policy container.Container.contract

(* Cold path of [spawn]: one full verify → analyze → compile, with the
   helper table compiled against retargetable forward stores so every
   later instance can re-bind it to its own stores.  The template VM
   built here becomes the image's first instance. *)
let build_image t ~key ~hook ~extra_regions ~granted container =
  let program = Container.program container in
  let runtime = container.Container.runtime in
  let baseline = container.Container.local_store in
  let local_fwd =
    Kvstore.forward ~target:baseline ("fwd:" ^ Kvstore.name baseline)
  in
  let tenant_store = Tenant.store (Container.tenant container) in
  let tenant_fwd =
    Kvstore.forward ~target:tenant_store ("fwd:" ^ Kvstore.name tenant_store)
  in
  let global_fwd = Kvstore.forward ~target:t.global_store "fwd:global" in
  let dyn = ref (dyn_for t) in
  (* everything engine-side goes through an indirection ([Forward]
     stores, the [dyn] cell), so [Image.bind] can re-point the whole
     helper table at another instance — even one on another engine *)
  let facilities =
    Syscall.facilities_via dyn ~local_store:local_fwd ~tenant_store:tenant_fwd
      ~global_store:global_fwd
  in
  let helpers = Syscall.build ~extra:t.extra_helpers ~granted facilities in
  let regions = Hook.ctx_region hook :: extra_regions in
  let cycle_cost = Platform.cycle_cost t.platform runtime in
  let make vm outcome =
    Image.create ~key ~runtime ~vm_image:(Femto_vm.Vm.image_of vm) ~outcome
      ~baseline ~local_fwd ~tenant_fwd ~global_fwd ~dyn
  in
  match runtime with
  | Platform.Fc -> (
      match
        Femto_analysis.Analysis.load_outcome ~config:t.config ~cycle_cost
          ~tier:t.tier ~helpers ~regions program
      with
      | Ok (vm, outcome) -> Ok (make vm (Some outcome), vm)
      | Error fault -> Error fault)
  | Platform.Rbpf -> (
      match
        Femto_vm.Vm.load ~config:t.config ~cycle_cost
          ~tier:Femto_vm.Vm.Decoded ~helpers ~regions program
      with
      | Ok vm -> Ok (make vm None, vm)
      | Error fault -> Error fault)
  | Platform.Certfc ->
      (* [spawn] falls back to [attach] before reaching here *)
      assert false

(* Bind a spawned VM into [container]: private CoW view over the image's
   frozen kv baseline, and a [prepare_run] hook that re-points the
   image's forward stores at this instance before each execution. *)
let adopt_instance t ~hook ~hook_uuid ?delta_quota img vm container =
  let local =
    Kvstore.cow ?delta_quota ~parent:(Image.baseline img)
      (Printf.sprintf "local:%s" (Container.name container))
  in
  Container.set_local_store container local;
  let tenant_store = Tenant.store (Container.tenant container) in
  let global_store = t.global_store in
  let dyn = dyn_for t in
  Container.set_prepare_run container (fun () ->
      Image.bind img ~local ~tenant:tenant_store ~global:global_store ~dyn);
  container.Container.instance <- Some (Container.Fc_instance vm);
  container.Container.attached_to <- Some hook_uuid;
  Hook.append_attached hook container;
  Image.record_spawn img;
  if Obs.enabled () then begin
    Ometrics.incr m_attaches;
    Ometrics.incr m_spawns
  end

(* [spawn] is [attach] through the image cache: the first container with
   a given (program, runtime, granted capabilities) pays the cold
   verify → analyze → compile; every later one re-binds the cached
   immutable artifact to fresh private state — no verification, no
   analysis, no decode, no compilation.  [delta_quota] caps the
   instance's private kv delta (its per-tenant write budget).  The
   certified runtime has no shareable artifact and falls back to a full
   [attach]. *)
let spawn t ~hook_uuid ?(extra_regions = []) ?delta_quota container =
  match Hashtbl.find_opt t.hooks hook_uuid with
  | None -> Error (No_such_hook hook_uuid)
  | Some hook -> (
      match container.Container.attached_to with
      | Some uuid -> Error (Already_attached uuid)
      | None -> (
          match container.Container.runtime with
          | Platform.Certfc -> attach t ~hook_uuid ~extra_regions container
          | Platform.Fc | Platform.Rbpf -> (
              let granted = granted_for hook container in
              let key =
                Image.key_of ~runtime:container.Container.runtime ~granted
                  (Container.program container)
              in
              match Hashtbl.find_opt t.images key with
              | Some img ->
                  if Obs.enabled () then Ometrics.incr m_image_hits;
                  let regions = Hook.ctx_region hook :: extra_regions in
                  let vm = Femto_vm.Vm.spawn ~regions (Image.vm_image img) in
                  adopt_instance t ~hook ~hook_uuid ?delta_quota img vm
                    container;
                  Ok hook
              | None -> (
                  if Obs.enabled () then Ometrics.incr m_image_misses;
                  match build_image t ~key ~hook ~extra_regions ~granted container with
                  | Error fault ->
                      if Obs.enabled () then Ometrics.incr m_attach_rejected;
                      Error (Verification_failed fault)
                  | Ok (img, vm) ->
                      Hashtbl.replace t.images key img;
                      adopt_instance t ~hook ~hook_uuid ?delta_quota img vm
                        container;
                      Ok hook))))

let images_cached t = Hashtbl.length t.images
let find_image t key = Hashtbl.find_opt t.images key

let cached_images t =
  Hashtbl.fold (fun _ img acc -> img :: acc) t.images []

let image_spawns t =
  Hashtbl.fold (fun _ img acc -> acc + Image.spawns img) t.images 0

(* Refresh the [vm.image_words] / [engine.instance_words] gauges with
   one reachable-words walk each (explicit, not per-spawn: walking the
   heap on every spawn would dwarf the spawn itself at fleet scale).
   The instance gauge is the incremental cost of everything attached on
   top of the shared images: walk(instances ∪ images) − walk(images). *)
let update_footprint_gauges t =
  let images = cached_images t in
  let image_words = Obj.reachable_words (Obj.repr images) in
  let containers =
    Hashtbl.fold (fun _ hook acc -> Hook.attached hook @ acc) t.hooks []
  in
  let total_words = Obj.reachable_words (Obj.repr (containers, images)) in
  Ometrics.set g_image_words (float_of_int image_words);
  Ometrics.set g_instance_words (float_of_int (total_words - image_words));
  (image_words, total_words - image_words)

(* --- trigger path --- *)

type exec_report = {
  container : Container.t;
  result : (int64, Fault.t) result;
  vm_cycles : int;
}

(* Fire a hook: every attached container runs, each in its own sandbox,
   r1 = context pointer.  Cycle costs (dispatch + setup + interpreted
   instructions) are charged to the RTOS clock when one is attached. *)
let trigger t hook ?ctx () =
  let t0 = if Obs.enabled () then Obs.now_ns () else 0.0 in
  (match ctx with Some bytes -> Hook.set_ctx hook bytes | None -> ());
  hook.Hook.triggers <- hook.Hook.triggers + 1;
  let charge cycles =
    match (t.kernel, t.clock) with
    | Some kernel, _ -> Femto_rtos.Clock.advance (Kernel.clock kernel) cycles
    | None, Some clock -> Femto_rtos.Clock.advance clock cycles
    | None, None -> ()
  in
  charge t.platform.Platform.empty_hook_cycles;
  let reports =
    List.map
      (fun container ->
        charge
          (Platform.hook_setup_cycles t.platform container.Container.runtime);
        let result =
          Container.run_instance container ~args:[| Hook.ctx_vaddr |]
        in
        container.Container.executions <- container.Container.executions + 1;
        (match result with
        | Ok _ -> ()
        | Error _ -> container.Container.faults <- container.Container.faults + 1);
        container.Container.last_result <- Some result;
        let vm_cycles = Container.last_run_cycles container in
        charge vm_cycles;
        { container; result; vm_cycles })
      (Hook.attached hook)
  in
  if Obs.enabled () then begin
    let faults =
      List.fold_left
        (fun acc r -> match r.result with Error _ -> acc + 1 | Ok _ -> acc)
        0 reports
    in
    Ometrics.incr m_hook_fires;
    Ometrics.add m_container_runs (List.length reports);
    Ometrics.add m_container_faults faults;
    Ometrics.observe m_hook_ns (Obs.now_ns () -. t0);
    Obs.event (fun () ->
        Otrace.Hook_fired
          {
            uuid = hook.Hook.uuid;
            name = hook.Hook.name;
            containers = List.length reports;
            faults;
          })
  end;
  reports

let trigger_by_uuid t ~uuid ?ctx () =
  match find_hook t uuid with
  | None -> Error (No_such_hook uuid)
  | Some hook -> Ok (trigger t hook ?ctx ())

(* --- warm-pool fire path --- *)

(* Pre-allocated argv for [fire]: every container receives the same
   context pointer in r1, and the array's contents never change. *)
let fire_args = [| Hook.ctx_vaddr |]

let[@inline] charge_cycles t cycles =
  match (t.kernel, t.clock) with
  | Some kernel, _ -> Femto_rtos.Clock.advance (Kernel.clock kernel) cycles
  | None, Some clock -> Femto_rtos.Clock.advance clock cycles
  | None, None -> ()

let fire_container t container =
  container.Container.prepare_run ();
  charge_cycles t
    (Platform.hook_setup_cycles t.platform container.Container.runtime);
  let ok =
    match container.Container.instance with
    | Some (Container.Fc_instance vm) -> (
        match Femto_vm.Vm.compiled vm with
        | Some cc ->
            if Obs.enabled () then begin
              Ometrics.incr m_pool_hits;
              if Femto_vm.Compile.runs cc > 0 then Ometrics.incr m_pool_resets
            end;
            let ok = Femto_vm.Compile.fire cc ~args:fire_args in
            container.Container.total_vm_cycles <-
              container.Container.total_vm_cycles
              + (Femto_vm.Vm.stats vm).Femto_vm.Interp.cycles;
            ok
        | None -> (
            match Container.run_instance container ~args:fire_args with
            | Ok _ -> true
            | Error _ -> false))
    | _ -> (
        match Container.run_instance container ~args:fire_args with
        | Ok _ -> true
        | Error _ -> false)
  in
  container.Container.executions <- container.Container.executions + 1;
  if not ok then container.Container.faults <- container.Container.faults + 1;
  charge_cycles t (Container.last_run_cycles container);
  ok

let rec fire_loop t hook n i faults =
  if i >= n then faults
  else
    match Hook.attached_get hook i with
    | None -> fire_loop t hook n (i + 1) faults
    | Some container ->
        let ok = fire_container t container in
        fire_loop t hook n (i + 1) (if ok then faults else faults + 1)

(* [fire] is [trigger] minus the report list: the steady-state dispatch
   path for a warmed pool.  Every attached container runs on its warm
   instance (compiled instances reset via the dirty high-water mark);
   no reports or [last_result] are built and only counters — plain
   mutable stores — are updated, so with no kernel clock attached a
   fire over allocation-free compiled programs performs zero minor-heap
   allocation.  Returns the number of faulting containers. *)
let fire t hook =
  hook.Hook.triggers <- hook.Hook.triggers + 1;
  charge_cycles t t.platform.Platform.empty_hook_cycles;
  let n = Hook.attached_count hook in
  let faults = fire_loop t hook n 0 0 in
  if Obs.enabled () then begin
    Ometrics.incr m_hook_fires;
    Ometrics.add m_container_runs n;
    if faults > 0 then Ometrics.add m_container_faults faults
  end;
  faults
