(** Key-value store — the persistence primitive Femto-Containers get in
    lieu of a file system (paper §7).

    Values survive between invocations of a container.  Three scopes are
    assembled by the hosting engine: local (one container), tenant (one
    tenant's containers), global (the whole device).

    Besides the classic bounded table ({!create}), two further
    representations back the container image/instance split: {!cow}
    builds a copy-on-write view over a frozen parent (reads fall
    through, the first write materializes a private delta entry, and
    teardown is O(delta)), and {!forward} builds a retargetable
    indirection so helper tables compiled once against a shared image
    can be re-bound to the running instance's stores per dispatch. *)

type t

exception Full of string

val create : ?max_entries:int -> string -> t
(** [create name] makes an empty, bounded store ([max_entries] defaults
    to 64 — device RAM is finite). *)

val cow : ?max_entries:int -> ?delta_quota:int -> parent:t -> string -> t
(** [cow ~parent name] is a copy-on-write view over [parent], observably
    an eager copy of it: same logical contents, same capacity semantics
    (overwrite-at-capacity succeeds, insert-at-capacity fails against
    [max_entries], default the parent's).  [delta_quota], when given,
    additionally caps private delta entries — the per-tenant write
    budget for instances spawned from a shared image (tombstones are
    exempt: deletion never fails).  The parent must not be mutated while
    the view is live. *)

val forward : target:t -> string -> t
(** A retargetable indirection: all operations delegate to the current
    target (capacity included). *)

val retarget : t -> t -> unit
(** [retarget fwd target] re-points a {!forward} store.
    @raise Invalid_argument on a non-forward store. *)

val name : t -> string

val length : t -> int
(** Logical entry count (for a CoW view: as seen through the view). *)

val fetch : t -> int32 -> int64
(** Missing keys read as zero (as in the paper's thread-counter
    example). *)

val mem : t -> int32 -> bool

val store : t -> int32 -> int64 -> (unit, [ `Store_full of string ]) result
(** Inserting a new key into a full store fails; overwriting an existing
    key (including one inherited from a CoW parent) always succeeds. *)

val remove : t -> int32 -> unit
val clear : t -> unit

val bindings : t -> (int32 * int64) list
(** Sorted by key; for a CoW view, the merged logical contents. *)

val is_cow : t -> bool

val delta_size : t -> int
(** Privately-owned entries: delta size for a CoW view (tombstones
    included), table size otherwise. *)

val parent : t -> t option
(** The CoW parent, when [is_cow]. *)

val ram_bytes : t -> int
(** Approximate RAM cost for the footprint experiments; a CoW view is
    billed only for its delta, a forward only for the indirection. *)
