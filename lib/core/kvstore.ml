(* Key-value store: the persistence primitive Femto-Containers get in lieu
   of a file system (paper §7).  Values survive between invocations of a
   container.  Three scopes exist, assembled by the hosting engine:
   - local:  private to one container;
   - tenant: shared by the containers of one tenant;
   - global: shared by every container on the device.

   Three representations share one interface:
   - [Direct]:  a plain bounded hash table (the classic store);
   - [Cow]:     a copy-on-write view over a frozen parent — reads fall
     through to the parent, the first write materializes a private delta
     entry, deletes of parent keys become tombstones, and teardown cost
     is O(delta).  This is what makes image-spawned container instances
     cheap: thousands of residents share one baseline table;
   - [Forward]: a retargetable indirection, letting helper tables that
     were compiled once against a shared image be re-bound to the
     running instance's stores before each dispatch. *)

type t = {
  name : string;
  max_entries : int; (* bounded: RAM on the device is finite *)
  impl : impl;
}

and impl =
  | Direct of (int32, int64) Hashtbl.t
  | Cow of cow
  | Forward of fwd

and cow = {
  parent : t; (* must be frozen while this view is live *)
  delta : (int32, entry) Hashtbl.t;
  delta_quota : int option;
      (* optional per-view cap on private delta entries (per-tenant
         write quota); [None] bounds only by [max_entries] *)
  mutable cleared : bool; (* a view-level clear hides the whole parent *)
  mutable logical_len : int; (* parent length at creation, maintained *)
}

and entry = Value of int64 | Tombstone

and fwd = { mutable target : t }

exception Full of string

let create ?(max_entries = 64) name =
  { name; max_entries; impl = Direct (Hashtbl.create 16) }

let name t = t.name

let rec length t =
  match t.impl with
  | Direct table -> Hashtbl.length table
  | Cow c -> c.logical_len
  | Forward f -> length f.target

(* [cow] views must only be created over parents that are not mutated
   for the lifetime of the view (the engine freezes image baselines):
   the cached logical length relies on it. *)
let cow ?max_entries ?delta_quota ~parent vname =
  let max_entries =
    match max_entries with Some m -> m | None -> parent.max_entries
  in
  {
    name = vname;
    max_entries;
    impl =
      Cow
        {
          parent;
          delta = Hashtbl.create 8;
          delta_quota;
          cleared = false;
          logical_len = length parent;
        };
  }

let forward ~target fname = { name = fname; max_entries = 0; impl = Forward { target } }

let retarget t target =
  match t.impl with
  | Forward f -> f.target <- target
  | Direct _ | Cow _ -> invalid_arg "Kvstore.retarget: not a forward store"

(* Missing keys read as zero, as in the paper's thread-counter example
   (first fetch of a fresh key yields a zero counter). *)
let rec fetch t key =
  match t.impl with
  | Direct table -> (
      match Hashtbl.find_opt table key with Some v -> v | None -> 0L)
  | Cow c -> (
      match Hashtbl.find_opt c.delta key with
      | Some (Value v) -> v
      | Some Tombstone -> 0L
      | None -> if c.cleared then 0L else fetch c.parent key)
  | Forward f -> fetch f.target key

let rec mem t key =
  match t.impl with
  | Direct table -> Hashtbl.mem table key
  | Cow c -> (
      match Hashtbl.find_opt c.delta key with
      | Some (Value _) -> true
      | Some Tombstone -> false
      | None -> (not c.cleared) && mem c.parent key)
  | Forward f -> mem f.target key

(* Capacity is counted on *logical* entries, so a CoW view behaves
   exactly like an eager copy of its parent: overwriting an existing key
   (own or inherited) always succeeds even at capacity; inserting a
   fresh key at capacity fails.  [delta_quota], when set, additionally
   bounds the private delta — the per-tenant write budget. *)
let rec store t key value =
  match t.impl with
  | Direct table ->
      if
        (not (Hashtbl.mem table key))
        && Hashtbl.length table >= t.max_entries
      then Error (`Store_full t.name)
      else begin
        Hashtbl.replace table key value;
        Ok ()
      end
  | Cow c ->
      let fresh = not (mem t key) in
      if fresh && c.logical_len >= t.max_entries then Error (`Store_full t.name)
      else if
        match c.delta_quota with
        | Some q ->
            (not (Hashtbl.mem c.delta key)) && Hashtbl.length c.delta >= q
        | None -> false
      then Error (`Store_full t.name)
      else begin
        Hashtbl.replace c.delta key (Value value);
        if fresh then c.logical_len <- c.logical_len + 1;
        Ok ()
      end
  | Forward f -> store f.target key value

let rec remove t key =
  match t.impl with
  | Direct table -> Hashtbl.remove table key
  | Cow c ->
      if mem t key then c.logical_len <- c.logical_len - 1;
      if c.cleared || not (mem c.parent key) then Hashtbl.remove c.delta key
      else
        (* the parent still holds the key: shadow it.  Tombstones are
           exempt from [delta_quota] — deletion must not fail. *)
        Hashtbl.replace c.delta key Tombstone
  | Forward f -> remove f.target key

let rec clear t =
  match t.impl with
  | Direct table -> Hashtbl.reset table
  | Cow c ->
      Hashtbl.reset c.delta;
      c.cleared <- true;
      c.logical_len <- 0
  | Forward f -> clear f.target

let rec bindings t =
  match t.impl with
  | Direct table ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> Int32.compare a b)
  | Cow c ->
      let merged = Hashtbl.create 16 in
      if not c.cleared then
        List.iter (fun (k, v) -> Hashtbl.replace merged k v) (bindings c.parent);
      Hashtbl.iter
        (fun k e ->
          match e with
          | Value v -> Hashtbl.replace merged k v
          | Tombstone -> Hashtbl.remove merged k)
        c.delta;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
      |> List.sort (fun (a, _) (b, _) -> Int32.compare a b)
  | Forward f -> bindings f.target

(* Introspection for the engine, bench and tests. *)

let is_cow t = match t.impl with Cow _ -> true | Direct _ | Forward _ -> false

let rec delta_size t =
  match t.impl with
  | Direct table -> Hashtbl.length table
  | Cow c -> Hashtbl.length c.delta
  | Forward f -> delta_size f.target

let parent t = match t.impl with Cow c -> Some c.parent | _ -> None

(* Approximate RAM cost in bytes, for the memory-footprint experiments:
   key (4) + value (8) + per-entry bookkeeping (8).  A CoW view pays
   only for its delta, and a forward only for the indirection — shared
   parents/targets are billed to their owners. *)
let ram_bytes t =
  match t.impl with
  | Direct table -> 24 + (Hashtbl.length table * 20)
  | Cow c -> 40 + (Hashtbl.length c.delta * 20)
  | Forward _ -> 16
