(* The system-call surface exposed to containers.

   Every interaction between a container and the OS goes through these
   helpers, reached with the eBPF [call] instruction (paper §7, "Simple
   Containerization").  The table is built per container: only helpers
   whose capability the contract granted are registered, so an ungranted
   call faults as [Unknown_helper] at run time (and is already flagged by
   the pre-flight verifier, which checks call targets against the table).

   Helper IDs are a stable ABI, grouped by capability:
     0x01-0x0f  debug/time      0x10-0x1f  key-value stores
     0x20-0x2f  sensors/memory  0x30-0x3f  CoAP (registered by femto_coap) *)

module Helper = Femto_vm.Helper
module Mem = Femto_vm.Mem

let id_trace = 0x01
let id_now_ms = 0x02
let id_ticks = 0x03
let id_store_local = 0x10
let id_fetch_local = 0x11
let id_store_tenant = 0x12
let id_fetch_tenant = 0x13
let id_store_global = 0x14
let id_fetch_global = 0x15
let id_saul_read = 0x20
let id_memcpy = 0x21

(* CoAP helper IDs: part of the stable ABI here; implementations are
   installed by femto_coap through [add_helper_installer]. *)
let id_gcoap_resp_init = 0x30
let id_coap_add_format = 0x31
let id_coap_opt_finish = 0x32
let id_fmt_s16_dfp = 0x33
let id_coap_set_payload_len = 0x34

(* Full name -> id table for the assembler ([Asm.assemble ~helpers]). *)
let standard_names =
  [
    ("bpf_trace", id_trace);
    ("bpf_now_ms", id_now_ms);
    ("bpf_ticks", id_ticks);
    ("bpf_store_local", id_store_local);
    ("bpf_fetch_local", id_fetch_local);
    ("bpf_store_tenant", id_store_tenant);
    ("bpf_fetch_tenant", id_fetch_tenant);
    ("bpf_store_global", id_store_global);
    ("bpf_fetch_global", id_fetch_global);
    ("bpf_saul_read", id_saul_read);
    ("bpf_memcpy", id_memcpy);
    ("bpf_gcoap_resp_init", id_gcoap_resp_init);
    ("bpf_coap_add_format", id_coap_add_format);
    ("bpf_coap_opt_finish", id_coap_opt_finish);
    ("bpf_fmt_s16_dfp", id_fmt_s16_dfp);
    ("bpf_coap_set_payload_len", id_coap_set_payload_len);
  ]

let resolve_name name = List.assoc_opt name standard_names

(* Facilities the engine provides to the helpers of one container. *)
type facilities = {
  local_store : Kvstore.t;
  tenant_store : Kvstore.t;
  global_store : Kvstore.t;
  now_ms : unit -> int64;
  ticks : unit -> int64;
  read_sensor : int -> (int64, string) result;
  trace : int64 -> unit;
}

(* The per-engine half of the facilities: time, sensors and trace.  An
   image's helper table is compiled once against a [dyn ref] plus forward
   kv stores, and [Image.bind] re-points both at the running instance's
   engine before each dispatch — that is what lets one cached image serve
   containers on many engines (one engine per fleet device). *)
type dyn = {
  d_now_ms : unit -> int64;
  d_ticks : unit -> int64;
  d_read_sensor : int -> (int64, string) result;
  d_trace : int64 -> unit;
}

let dyn_of_facilities f =
  {
    d_now_ms = f.now_ms;
    d_ticks = f.ticks;
    d_read_sensor = f.read_sensor;
    d_trace = f.trace;
  }

(* Facilities whose dynamic half indirects through [cell]: retargeting
   the cell retargets every helper compiled against these. *)
let facilities_via cell ~local_store ~tenant_store ~global_store =
  {
    local_store;
    tenant_store;
    global_store;
    now_ms = (fun () -> !cell.d_now_ms ());
    ticks = (fun () -> !cell.d_ticks ());
    read_sensor = (fun id -> !cell.d_read_sensor id);
    trace = (fun v -> !cell.d_trace v);
  }

let key_of args_value = Int64.to_int32 (Int64.logand args_value 0xFFFF_FFFFL)

let register_kv helpers ~store ~store_id ~fetch_id ~suffix =
  Helper.register helpers ~id:store_id ~cost_cycles:80 ~arity:2
    ~name:("bpf_store_" ^ suffix)
    (fun _mem args ->
      match Kvstore.store store (key_of args.Helper.a1) args.Helper.a2 with
      | Ok () -> Ok 0L
      | Error (`Store_full name) -> Error (Printf.sprintf "store %s full" name));
  Helper.register helpers ~id:fetch_id ~cost_cycles:80 ~arity:2
    ~name:("bpf_fetch_" ^ suffix)
    (fun mem args ->
      let value = Kvstore.fetch store (key_of args.Helper.a1) in
      let buf = Bytes.create 8 in
      Bytes.set_int64_le buf 0 value;
      match Mem.store_bytes mem ~addr:args.Helper.a2 buf with
      | Ok () -> Ok 0L
      | Error () -> Error "fetch destination outside allow-list")

(* Build the helper table for one container from its granted
   capabilities.  [extra] lets integration layers (e.g. CoAP) install
   capability-gated helpers without femto_core depending on them. *)
let build ?(extra = []) ~granted facilities =
  let helpers = Helper.create () in
  let has cap = List.mem cap granted in
  (* always available: pure memory move within the allow-list *)
  Helper.register helpers ~id:id_memcpy ~cost_cycles:30 ~arity:3
    ~name:"bpf_memcpy"
    (fun mem args ->
      let len = Int64.to_int args.Helper.a3 in
      if len < 0 || len > 1024 then Error "memcpy length out of range"
      else
        match Mem.load_bytes mem ~addr:args.Helper.a2 ~len with
        | Error () -> Error "memcpy source outside allow-list"
        | Ok data -> (
            match Mem.store_bytes mem ~addr:args.Helper.a1 data with
            | Ok () -> Ok args.Helper.a1
            | Error () -> Error "memcpy destination outside allow-list"));
  if has Contract.Debug then
    Helper.register helpers ~id:id_trace ~cost_cycles:40 ~arity:1
      ~name:"bpf_trace"
      (fun _mem args ->
        facilities.trace args.Helper.a1;
        Ok 0L);
  if has Contract.Time then begin
    Helper.register helpers ~id:id_now_ms ~cost_cycles:25 ~arity:0
      ~name:"bpf_now_ms"
      (fun _mem _args -> Ok (facilities.now_ms ()));
    Helper.register helpers ~id:id_ticks ~cost_cycles:20 ~arity:0
      ~name:"bpf_ticks"
      (fun _mem _args -> Ok (facilities.ticks ()))
  end;
  if has Contract.Kv_local then
    register_kv helpers ~store:facilities.local_store ~store_id:id_store_local
      ~fetch_id:id_fetch_local ~suffix:"local";
  if has Contract.Kv_tenant then
    register_kv helpers ~store:facilities.tenant_store
      ~store_id:id_store_tenant ~fetch_id:id_fetch_tenant ~suffix:"tenant";
  if has Contract.Kv_global then
    register_kv helpers ~store:facilities.global_store
      ~store_id:id_store_global ~fetch_id:id_fetch_global ~suffix:"global";
  if has Contract.Sensors then
    Helper.register helpers ~id:id_saul_read ~cost_cycles:500 ~arity:2
      ~name:"bpf_saul_read"
      (fun mem args ->
        match facilities.read_sensor (Int64.to_int args.Helper.a1) with
        | Error message -> Error message
        | Ok value -> (
            let buf = Bytes.create 8 in
            Bytes.set_int64_le buf 0 value;
            match Mem.store_bytes mem ~addr:args.Helper.a2 buf with
            | Ok () -> Ok 0L
            | Error () -> Error "sensor destination outside allow-list"));
  List.iter
    (fun (cap, install) -> if has cap then install helpers)
    extra;
  helpers
