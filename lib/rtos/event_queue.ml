(* Time-ordered event queue for the RTOS simulator.

   Events fire in (time, insertion-sequence) order, so simultaneous events
   are handled first-scheduled-first — deterministic by construction.

   The store is an array-backed binary min-heap: a fleet shard parks one
   timer per simulated device on its wheel, so insertion must be
   O(log n) — the sorted list this replaces made scheduling the millionth
   device timer a million-element walk. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0..size-1) is a min-heap *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let earlier a b =
  match Int64.compare a.time b.time with 0 -> a.seq < b.seq | c -> c < 0

let grow t entry =
  let cap = Array.length t.heap in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let heap = Array.make cap' entry in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier heap.(i) heap.(parent) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(i);
      heap.(i) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let left = (2 * i) + 1 in
  if left < size then begin
    let smallest =
      let s = if earlier heap.(left) heap.(i) then left else i in
      let right = left + 1 in
      if right < size && earlier heap.(right) heap.(s) then right else s
    in
    if smallest <> i then begin
      let tmp = heap.(smallest) in
      heap.(smallest) <- heap.(i);
      heap.(i) <- tmp;
      sift_down heap size smallest
    end
  end

let add t ~at payload =
  let entry = { time = at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

(* Slots at or past [size] keep their last entry (an array heap has no
   empty value to write); each pins at most one dead payload until the
   slot is reused, which the re-arming traffic of a running simulation
   does constantly. *)
let pop_root t =
  let root = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t.heap t.size 0
  end;
  root

let pop t =
  if t.size = 0 then None
  else
    let e = pop_root t in
    Some (e.time, e.payload)

(* Pop the next event only if it is due at or before [now]. *)
let pop_due t ~now =
  if t.size = 0 || Int64.compare t.heap.(0).time now > 0 then None
  else
    let e = pop_root t in
    Some (e.time, e.payload)

(* Batched drain: fire every event due at or before [until], in (time,
   seq) order, handing each its due time.  Exactly equivalent to a
   [pop_due] loop (the QCheck oracle test in test_rtos pins this),
   including when callbacks re-arm new events at or before [until] —
   those fire in this same call.  Returns the number of events fired.
   One epoch of the fleet wheel is one [advance_until]. *)
let advance_until t ~until f =
  let fired = ref 0 in
  while t.size > 0 && Int64.compare t.heap.(0).time until <= 0 do
    let e = pop_root t in
    incr fired;
    f ~at:e.time e.payload
  done;
  !fired
