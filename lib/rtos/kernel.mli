(** The RTOS simulator kernel: threads, priority scheduler, timers, and
    the context-switch hook Femto-Containers attach to.

    Stands in for RIOT (see DESIGN.md, substitutions): a deterministic
    cooperative simulation in which each scheduled thread runs one
    *quantum* (a closure) and reports whether it wants to run again,
    block, or finish.  Scheduling is priority-based (lower number = higher
    priority, RIOT convention) with round-robin among equal priorities;
    every scheduling decision fires the context-switch hooks. *)

type quantum_result = Yield | Block | Finish

type thread_state = Ready | Blocked | Done

type thread = {
  tid : int;
  name : string;
  mutable priority : int;  (** mutable for priority inheritance *)
  mutable state : thread_state;
  mutable last_run : int;
  mutable body : t -> quantum_result;
}

and t

val create : ?frequency_hz:int -> ?context_switch_cost:int -> unit -> t

val clock : t -> Clock.t
val now : t -> int64
val now_us : t -> float

val current_tid : t -> int
(** 0 when no thread has run yet, matching the paper's thread-counter
    convention ("zero pid means no next thread"). *)

val context_switches : t -> int
val set_context_switch_cost : t -> int -> unit

val spawn : t -> name:string -> ?priority:int -> (t -> quantum_result) -> thread
val find_thread : t -> int -> thread option

val wake : thread -> unit
(** Blocked -> Ready; no-op otherwise. *)

val add_switch_hook : t -> (prev:int -> next:int -> unit) -> unit
(** Fires on every context switch, in registration order — the firmware
    launchpad of the paper's Listing 1 plugs in here. *)

(** {2 Timers} *)

val at_cycles : t -> at:int64 -> (t -> unit) -> unit
val after_cycles : t -> cycles:int -> (t -> unit) -> unit
val after_us : t -> us:int -> (t -> unit) -> unit

val every_us : t -> us:int -> (t -> bool) -> unit
(** Re-arming periodic timer; return [false] from the callback to stop. *)

val sleep_us : t -> thread -> us:int -> unit

val run_timers_until : t -> until:int64 -> int
(** Timer-only epoch run: fire every timer due at or before [until] in
    (time, seq) order, advancing the clock to each timer's due time
    before its callback and finally to [until].  Thread quanta do not
    run — this is the fleet shard's wheel loop.  Returns the number of
    timers fired. *)

(** {2 Scheduling} *)

type step_outcome = Ran of int | Advanced_idle | Nothing_to_do

val step : t -> step_outcome
(** Fire due timers, then run one thread quantum or idle-advance the
    clock to the next timer. *)

val run : t -> ?until_cycles:int64 -> unit -> int
(** Run until the clock passes [until_cycles] or the system is fully idle
    with no pending timers; returns the number of quanta executed. *)

val run_for_us : t -> us:int -> int
