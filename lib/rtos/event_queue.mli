(** Time-ordered event queue for the RTOS simulator.

    Events fire in (time, insertion-sequence) order, so simultaneous
    events are handled first-scheduled-first — deterministic by
    construction.  Backed by a binary min-heap: [add] and [pop] are
    O(log n), which is what keeps a fleet shard's wheel cheap with one
    parked timer per simulated device. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> at:int64 -> 'a -> unit
(** Schedule a payload at an absolute cycle time. *)

val peek_time : 'a t -> int64 option
(** Time of the earliest pending event. *)

val pop : 'a t -> (int64 * 'a) option

val pop_due : 'a t -> now:int64 -> (int64 * 'a) option
(** Pop the earliest event only if it is due at or before [now]. *)

val advance_until : 'a t -> until:int64 -> (at:int64 -> 'a -> unit) -> int
(** [advance_until t ~until f] fires every event due at or before
    [until] in (time, seq) order, handing each its due time; events the
    callbacks re-arm at or before [until] fire in the same call.
    Exactly equivalent to a [pop_due] loop.  Returns the number of
    events fired — one fleet-wheel epoch is one [advance_until]. *)
