(* The RTOS simulator kernel: threads, priority scheduler, timers, and the
   context-switch hook Femto-Containers attach to.

   This stands in for RIOT in the paper's experiments (see DESIGN.md,
   substitutions).  It is a deterministic cooperative simulation: each
   scheduled thread runs one *quantum* (a closure) and reports whether it
   wants to run again, block, or finish.  Scheduling is priority-based
   (lower number = higher priority, RIOT convention) with round-robin among
   equal priorities.  Every scheduler decision fires the context-switch
   hooks, which is where the thread-counter example and the Table 4 hook
   benchmarks plug in. *)

type quantum_result = Yield | Block | Finish

type thread_state = Ready | Blocked | Done

type thread = {
  tid : int;
  name : string;
  mutable priority : int;
  mutable state : thread_state;
  mutable last_run : int; (* scheduler tick of last quantum, for round-robin *)
  mutable body : t -> quantum_result;
}

and t = {
  clock : Clock.t;
  mutable threads : thread list; (* in creation order *)
  mutable current_tid : int; (* 0 = none, matching the paper's example *)
  mutable next_tid : int;
  mutable tick : int;
  timers : (t -> unit) Event_queue.t;
  mutable switch_hooks : (prev:int -> next:int -> unit) list;
  mutable context_switch_cost : int; (* cycles charged per switch *)
  mutable switches : int;
}

let create ?(frequency_hz = Clock.default_frequency_hz)
    ?(context_switch_cost = 150) () =
  {
    clock = Clock.create ~frequency_hz ();
    threads = [];
    current_tid = 0;
    next_tid = 1;
    tick = 0;
    timers = Event_queue.create ();
    switch_hooks = [];
    context_switch_cost;
    switches = 0;
  }

let clock t = t.clock
let now t = Clock.now t.clock
let now_us t = Clock.us_of_cycles t.clock (Clock.now t.clock)
let current_tid t = t.current_tid
let context_switches t = t.switches
let set_context_switch_cost t cost = t.context_switch_cost <- cost

let spawn t ~name ?(priority = 7) body =
  let thread =
    {
      tid = t.next_tid;
      name;
      priority;
      state = Ready;
      last_run = 0;
      body;
    }
  in
  t.next_tid <- t.next_tid + 1;
  t.threads <- t.threads @ [ thread ];
  thread

let find_thread t tid = List.find_opt (fun th -> th.tid = tid) t.threads

let wake thread = if thread.state = Blocked then thread.state <- Ready

(* Context-switch hooks run on every switch; registration order is
   execution order. *)
let add_switch_hook t hook = t.switch_hooks <- t.switch_hooks @ [ hook ]

(* --- timers --- *)

let at_cycles t ~at callback = Event_queue.add t.timers ~at callback

let after_cycles t ~cycles callback =
  at_cycles t ~at:(Int64.add (now t) (Int64.of_int cycles)) callback

let after_us t ~us callback =
  after_cycles t ~cycles:(Clock.cycles_of_us t.clock us) callback

(* Re-arming periodic timer; [callback] may return [false] to stop. *)
let every_us t ~us callback =
  let rec arm () =
    after_us t ~us (fun kernel -> if callback kernel then arm ())
  in
  arm ()

let sleep_us t thread ~us =
  thread.state <- Blocked;
  after_us t ~us (fun _ -> wake thread)

(* --- scheduler --- *)

let runnable t =
  List.filter (fun th -> th.state = Ready) t.threads

(* Highest priority first; among equals, least recently run. *)
let pick_next t =
  match runnable t with
  | [] -> None
  | first :: rest ->
      let better a b =
        if a.priority <> b.priority then a.priority < b.priority
        else a.last_run < b.last_run
      in
      Some (List.fold_left (fun best th -> if better th best then th else best) first rest)

let fire_due_timers t =
  ignore
    (Event_queue.advance_until t.timers ~until:(now t) (fun ~at:_ callback ->
         callback t))

(* Timer-only epoch run: fire every timer due at or before [until] in
   (time, seq) order, advancing the clock to each timer's due time
   before its callback (so re-arming callbacks compute offsets from
   their own fire time) and finally to [until].  Thread quanta do not
   run — this is the fleet shard's wheel loop, where each shard kernel
   carries network deliveries and per-device telemetry timers but no
   threads.  Returns the number of timers fired. *)
let run_timers_until t ~until =
  let fired =
    Event_queue.advance_until t.timers ~until (fun ~at callback ->
        Clock.advance_to t.clock at;
        callback t)
  in
  Clock.advance_to t.clock until;
  fired

type step_outcome = Ran of int (* tid *) | Advanced_idle | Nothing_to_do

(* One scheduler step: fire due timers, then run one thread quantum, or
   idle-advance the clock to the next timer. *)
let step t =
  fire_due_timers t;
  match pick_next t with
  | Some thread ->
      t.tick <- t.tick + 1;
      thread.last_run <- t.tick;
      let prev = t.current_tid in
      let next = thread.tid in
      t.switches <- t.switches + 1;
      Clock.advance t.clock t.context_switch_cost;
      List.iter (fun hook -> hook ~prev ~next) t.switch_hooks;
      t.current_tid <- next;
      (match thread.body t with
      | Yield -> ()
      | Block -> thread.state <- Blocked
      | Finish -> thread.state <- Done);
      (* leaving the thread: the "next thread" is unknown until the next
         step; model the idle hand-off as tid 0 *)
      t.current_tid <- thread.tid;
      Ran thread.tid
  | None -> (
      match Event_queue.peek_time t.timers with
      | Some time ->
          Clock.advance_to t.clock time;
          Advanced_idle
      | None -> Nothing_to_do)

(* Run until the clock passes [until_cycles] or the system is fully idle
   with no pending timers.  Returns the number of quanta executed. *)
let run t ?until_cycles () =
  let budget_ok () =
    match until_cycles with
    | None -> true
    | Some limit -> Int64.compare (now t) limit < 0
  in
  let rec loop quanta =
    if not (budget_ok ()) then quanta
    else
      match step t with
      | Ran _ -> loop (quanta + 1)
      | Advanced_idle -> loop quanta
      | Nothing_to_do -> quanta
  in
  loop 0

let run_for_us t ~us =
  let limit = Int64.add (now t) (Int64.of_int (Clock.cycles_of_us t.clock us)) in
  run t ~until_cycles:limit ()
