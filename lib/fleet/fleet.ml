(* Sharded fleet simulator (see fleet.mli for the model).

   Determinism contract, in one place:

   - Devices are partitioned into [shards] by [id mod shards]; the shard
     count is part of the scenario, the domain count is not.  Shard s is
     executed by domain [s mod domains], so any domain count yields the
     same per-shard instruction stream.
   - Between barriers a shard touches only its own state: kernel, clock,
     network (with its own RNG), image cache, devices.  The only
     cross-shard channel is the outbox, filled by the shard's network
     gateway during its epoch and drained by the owner domain at the
     barrier — in shard order, FIFO within a shard.
   - The mutex/condvar barrier gives the owner a happens-before edge
     over every worker write (and vice versa for the next epoch), so the
     owner may read shard state and inject next-epoch traffic without
     further locking.
   - Global Obs metrics are disabled while workers run (shared mutable
     histograms are lossy under concurrent update); shards keep plain
     local counters that the owner merges afterwards.  The one remaining
     process-global table, the image digest cache, is mutex-guarded in
     image.ml. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Syscall = Femto_core.Syscall
module Hook = Femto_core.Hook
module Tenant = Femto_core.Tenant
module Kvstore = Femto_core.Kvstore
module Image = Femto_core.Image
module Kernel = Femto_rtos.Kernel
module Clock = Femto_rtos.Clock
module Mailbox = Femto_rtos.Mailbox
module Network = Femto_net.Network
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Program = Femto_ebpf.Program
module Asm = Femto_ebpf.Asm
module Crypto = Femto_crypto.Crypto
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics

(* Merged by the owner domain after a campaign; never touched by
   workers. *)
let m_devices = Obs.gauge "fleet.devices"
let m_updates_ok = Obs.counter "fleet.updates_accepted"
let m_updates_rejected = Obs.counter "fleet.updates_rejected"
let m_telemetry = Obs.counter "fleet.telemetry_fires"
let m_cross_shard = Obs.counter "fleet.cross_shard_datagrams"
let m_epochs = Obs.counter "fleet.epochs"

type config = {
  devices : int;
  shards : int;
  domains : int;
  seed : int;
  epoch_us : int;
  telemetry_us : int;
  wave : int;
  loss_permille : int;
  latency_us : int;
  delta_quota : int option;
  max_epochs : int;
}

let default_config =
  {
    devices = 10_000;
    shards = 16;
    domains = 1;
    seed = 42;
    epoch_us = 5_000;
    telemetry_us = 50_000;
    wave = 0;
    loss_permille = 0;
    latency_us = 300;
    delta_quota = None;
    max_epochs = 100_000;
  }

(* --- firmware --- *)

let hook_uuid = "fleet-app"
let server_addr = 0

(* v1: bump the telemetry counter at local[1]. *)
let firmware_v1_source =
  {|
    mov r1, 1
    mov r2, r10
    sub r2, 8
    call bpf_fetch_local
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 1
    mov r2, r3
    call bpf_store_local
    mov r0, r3
    exit
  |}

(* v2: same counter, plus a version marker at local[9] — the witness the
   campaign checks for ("is the new firmware actually running?"). *)
let firmware_v2_source =
  {|
    mov r1, 9
    mov r2, 2
    call bpf_store_local
    mov r1, 1
    mov r2, r10
    sub r2, 8
    call bpf_fetch_local
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 1
    mov r2, r3
    call bpf_store_local
    mov r0, r3
    exit
  |}

let firmware_contract = Contract.require [ Contract.Kv_local ]
let assemble src = Asm.assemble ~helpers:Syscall.resolve_name src

(* --- per-device / per-shard state --- *)

type device = {
  id : int;
  addr : int; (* radio address: id + 1 (0 is the campaign server) *)
  engine : Engine.t;
  clock : Clock.t;
  hook : Hook.t;
  tenant : Tenant.t;
  suit : Suit.device;
  inbox : bytes Mailbox.t; (* non-SUIT datagrams (device-to-device) *)
  mutable container : Container.t;
  mutable telemetry_fires : int;
  mutable updates_ok : int;
  mutable updates_rejected : int;
  mutable events : int; (* events processed, all kinds *)
  mutable event_hash : int; (* rolling (kind, time) order fingerprint *)
}

type shard_stats = {
  mutable s_telemetry : int;
  mutable s_updates_ok : int;
  mutable s_updates_rejected : int;
  mutable s_timer_events : int;
  mutable s_spawns : int;
}

type shard = {
  s_index : int;
  kernel : Kernel.t; (* the shard's wheel *)
  net : Network.t;
  images : (string, Image.t) Hashtbl.t; (* shared per shard *)
  programs : (string, Program.t) Hashtbl.t; (* payload digest → decoded *)
  mutable members : device array; (* filled after boot (devices need
                                     their shard to boot) *)
  outbox : (int * int * bytes) Queue.t; (* (src, dst, datagram) *)
  quota : int option; (* per-device CoW delta quota *)
  stats : shard_stats;
}

type server = {
  key : Cose.key;
  envelope : string; (* signed v2 manifest *)
  firmware : string; (* v2 program bytes *)
  v2_sequence : int64;
  mutable next_push : int; (* next device id to address *)
  acked : bool array; (* first ack seen, by device id *)
  pushed_epoch : int array; (* epoch of the last push, -1 = never *)
  mutable retry_cursor : int;
  mutable acks_done : int; (* devices with a first ack, any code *)
  mutable acks_ok : int;
  mutable acks_rejected : int;
}

type pool = {
  pm : Mutex.t;
  go : Condition.t;
  finished : Condition.t;
  mutable until : int64;
  mutable generation : int;
  mutable remaining : int;
  mutable stop : bool;
}

type t = {
  config : config;
  cfg_wave : int;
  shards : shard array;
  mutable devices : device array;
      (* by id; device i lives in shard i mod shards *)
  server : server;
  program_v1 : Program.t;
  mutable epoch : int;
  mutable cross_shard : int; (* datagrams exchanged at barriers *)
  mutable pool : pool option;
  mutable workers : unit Domain.t array;
}

(* --- event fingerprinting --- *)

let ev_telemetry = 1
let ev_update = 2
let ev_datagram = 3

let record_event dev kind time =
  dev.events <- dev.events + 1;
  dev.event_hash <-
    (((dev.event_hash * 1_000_003) + kind) lxor Int64.to_int time)
    land max_int

(* --- push frame: [len(envelope)][envelope][firmware] --- *)

let frame ~envelope ~firmware =
  let b = Buffer.create (4 + String.length envelope + String.length firmware) in
  Buffer.add_int32_be b (Int32.of_int (String.length envelope));
  Buffer.add_string b envelope;
  Buffer.add_string b firmware;
  Buffer.contents b

let unframe payload =
  if String.length payload < 4 then None
  else
    let n = Int32.to_int (String.get_int32_be payload 0) in
    if n < 0 || String.length payload < 4 + n then None
    else
      Some
        ( String.sub payload 4 n,
          String.sub payload (4 + n) (String.length payload - 4 - n) )

(* --- firmware install (the Suit.device install callback) --- *)

let program_for shard payload =
  let digest = Crypto.to_hex (Crypto.sha256 payload) in
  match Hashtbl.find_opt shard.programs digest with
  | Some p -> Ok p
  | None -> (
      match Program.of_bytes (Bytes.of_string payload) with
      | p ->
          Hashtbl.replace shard.programs digest p;
          Ok p
      | exception _ -> Error "undecodable firmware payload")

let spawn_firmware shard dev program =
  let container =
    Container.create
      ~name:(Printf.sprintf "d%d" dev.id)
      ~tenant:dev.tenant ~contract:firmware_contract program
  in
  match
    Engine.spawn dev.engine ~hook_uuid ?delta_quota:shard.quota container
  with
  | Ok _ ->
      shard.stats.s_spawns <- shard.stats.s_spawns + 1;
      dev.container <- container;
      Ok ()
  | Error e -> Error (Engine.attach_error_to_string e)

(* Swap to the new firmware; on a failed spawn the old program is
   respawned (an image-cache hit), so a device is never left without a
   running container — no half-installed state.  A successful swap
   resets the container-local CoW delta (fresh view over the new
   image's baseline); tenant/global stores persist. *)
let install_firmware shard dev payload =
  match program_for shard payload with
  | Error _ as e -> e
  | Ok program -> (
      let old_program = Container.program dev.container in
      Engine.detach dev.engine dev.container;
      match spawn_firmware shard dev program with
      | Ok () -> Ok ()
      | Error _ as e ->
          (match spawn_firmware shard dev old_program with
          | Ok () -> ()
          | Error _ -> () (* unreachable: the old image is cached *));
          e)

(* --- device-side traffic --- *)

let send_ack shard dev (msg : Message.t) ~ok =
  let ack =
    Message.make ~msg_type:Message.Acknowledgement ~token:msg.Message.token
      ~payload:(if ok then "ok" else "rej")
      ~code:(if ok then Message.code_changed else Message.code_bad_request)
      ~message_id:msg.Message.message_id ()
  in
  Network.send shard.net ~src:dev.addr ~dst:server_addr (Message.encode ack)

let handle_update shard dev (msg : Message.t) =
  let ok =
    match unframe msg.Message.payload with
    | None -> false
    | Some (envelope, firmware) -> (
        match
          Suit.process dev.suit ~envelope ~payloads:[ (hook_uuid, firmware) ]
        with
        | Ok _ -> true
        | Error _ -> false)
  in
  if ok then begin
    dev.updates_ok <- dev.updates_ok + 1;
    shard.stats.s_updates_ok <- shard.stats.s_updates_ok + 1
  end
  else begin
    dev.updates_rejected <- dev.updates_rejected + 1;
    shard.stats.s_updates_rejected <- shard.stats.s_updates_rejected + 1
  end;
  send_ack shard dev msg ~ok

let handle_datagram shard dev ~src:_ data =
  record_event dev ev_datagram (Kernel.now shard.kernel);
  Clock.advance_to dev.clock (Kernel.now shard.kernel);
  match Message.decode data with
  | exception Message.Parse_error _ -> ignore (Mailbox.send dev.inbox data)
  | msg ->
      if msg.Message.code = Message.code_post
         && Message.path_string msg = "/suit"
      then begin
        record_event dev ev_update (Kernel.now shard.kernel);
        handle_update shard dev msg
      end
      else ignore (Mailbox.send dev.inbox data)

let fire_telemetry shard dev =
  record_event dev ev_telemetry (Kernel.now shard.kernel);
  Clock.advance_to dev.clock (Kernel.now shard.kernel);
  ignore (Engine.fire dev.engine dev.hook);
  dev.telemetry_fires <- dev.telemetry_fires + 1;
  shard.stats.s_telemetry <- shard.stats.s_telemetry + 1

(* --- boot --- *)

let boot_device shard ~program_v1 ~key ~telemetry_us ~id =
  let clock = Clock.create () in
  let engine = Engine.create ~clock ~images:shard.images () in
  let hook =
    Engine.register_hook engine ~uuid:hook_uuid ~name:"fleet" ~ctx_size:8 ()
  in
  let tenant = Engine.add_tenant engine "t" in
  (* the SUIT install callback needs the device record, which holds the
     SUIT processor: tie the knot through a forward ref *)
  let dev_ref = ref None in
  let suit =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid:_ payload ->
        match !dev_ref with
        | Some dev -> install_firmware shard dev payload
        | None -> Error "device not booted")
      ~known_storage:(fun uuid -> String.equal uuid hook_uuid)
      ()
  in
  let container =
    Container.create
      ~name:(Printf.sprintf "d%d" id)
      ~tenant ~contract:firmware_contract program_v1
  in
  let dev =
    {
      id;
      addr = id + 1;
      engine;
      clock;
      hook;
      tenant;
      suit;
      inbox = Mailbox.create ~capacity:8 ();
      container;
      telemetry_fires = 0;
      updates_ok = 0;
      updates_rejected = 0;
      events = 0;
      event_hash = 0;
    }
  in
  dev_ref := Some dev;
  (match Engine.spawn engine ~hook_uuid ?delta_quota:shard.quota container with
  | Ok _ -> shard.stats.s_spawns <- shard.stats.s_spawns + 1
  | Error e -> failwith ("fleet boot: " ^ Engine.attach_error_to_string e));
  let node = Network.add_node shard.net ~addr:dev.addr in
  Network.set_receiver node (fun ~src data -> handle_datagram shard dev ~src data);
  if telemetry_us > 0 then begin
    (* stagger first fires across the period so a shard's wheel is not a
       single thundering herd at t = telemetry_us *)
    let offset_us = telemetry_us * ((id mod 16) + 1) / 16 in
    Kernel.after_us shard.kernel ~us:offset_us (fun _k ->
        fire_telemetry shard dev;
        Kernel.every_us shard.kernel ~us:telemetry_us (fun _k ->
            fire_telemetry shard dev;
            true))
  end;
  dev

let create (config : config) =
  let devices = max 1 config.devices in
  let shards_n = max 1 (min config.shards devices) in
  let domains = max 1 (min config.domains shards_n) in
  let config = { config with devices; shards = shards_n; domains } in
  let program_v1 = assemble firmware_v1_source in
  let program_v2 = assemble firmware_v2_source in
  let firmware = Bytes.to_string (Program.to_bytes program_v2) in
  let key =
    Cose.make_key ~key_id:"fleet-campaign"
      ~secret:("fleet-secret-" ^ string_of_int config.seed)
  in
  let v2_sequence = 2L in
  let manifest =
    Suit.make ~sequence:v2_sequence
      [ Suit.component_for ~storage_uuid:hook_uuid firmware ]
  in
  let server =
    {
      key;
      envelope = Suit.sign manifest key;
      firmware;
      v2_sequence;
      next_push = 0;
      acked = Array.make devices false;
      pushed_epoch = Array.make devices (-1);
      retry_cursor = 0;
      acks_done = 0;
      acks_ok = 0;
      acks_rejected = 0;
    }
  in
  let shards =
    Array.init shards_n (fun s ->
        let kernel = Kernel.create () in
        let net =
          Network.create ~kernel ~loss_permille:config.loss_permille
            ~latency_us:config.latency_us
            ~seed:(config.seed + s)
            ()
        in
        let shard =
          {
            s_index = s;
            kernel;
            net;
            images = Hashtbl.create 4;
            programs = Hashtbl.create 4;
            members = [||];
            outbox = Queue.create ();
            quota = config.delta_quota;
            stats =
              {
                s_telemetry = 0;
                s_updates_ok = 0;
                s_updates_rejected = 0;
                s_timer_events = 0;
                s_spawns = 0;
              };
          }
        in
        Network.set_gateway net (fun ~src ~dst payload ->
            Queue.add (src, dst, payload) shard.outbox);
        shard)
  in
  let all =
    Array.init devices (fun id ->
        boot_device
          shards.(id mod shards_n)
          ~program_v1 ~key ~telemetry_us:config.telemetry_us ~id)
  in
  let buckets = Array.make shards_n [] in
  for id = devices - 1 downto 0 do
    buckets.(id mod shards_n) <- all.(id) :: buckets.(id mod shards_n)
  done;
  Array.iteri (fun s shard -> shard.members <- Array.of_list buckets.(s)) shards;
  if Obs.enabled () then Ometrics.set m_devices (float_of_int devices);
  {
    config;
    cfg_wave = (if config.wave > 0 then config.wave else max 1 (devices / 100));
    shards;
    devices = all;
    server;
    program_v1;
    epoch = 0;
    cross_shard = 0;
    pool = None;
    workers = [||];
  }

(* --- epochs, barriers, domain pool --- *)

let epoch_cycles t =
  Int64.of_int
    (Clock.cycles_of_us (Kernel.clock t.shards.(0).kernel) t.config.epoch_us)

let run_shard_epoch shard ~until =
  let fired = Kernel.run_timers_until shard.kernel ~until in
  shard.stats.s_timer_events <- shard.stats.s_timer_events + fired

(* Worker w (1-based) runs shards with s mod domains = w; the owner
   domain takes residue 0.  The generation counter is the barrier: the
   owner bumps it under the mutex to start an epoch, workers count
   [remaining] down when their shards are done. *)
let worker_loop t pool w =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.pm;
    while (not pool.stop) && pool.generation = !my_gen do
      Condition.wait pool.go pool.pm
    done;
    if pool.stop then begin
      running := false;
      Mutex.unlock pool.pm
    end
    else begin
      my_gen := pool.generation;
      let until = pool.until in
      Mutex.unlock pool.pm;
      let domains = t.config.domains in
      Array.iter
        (fun shard ->
          if shard.s_index mod domains = w then run_shard_epoch shard ~until)
        t.shards;
      Mutex.lock pool.pm;
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.pm
    end
  done

let start_pool t =
  if t.config.domains > 1 && t.pool = None then begin
    let pool =
      {
        pm = Mutex.create ();
        go = Condition.create ();
        finished = Condition.create ();
        until = 0L;
        generation = 0;
        remaining = 0;
        stop = false;
      }
    in
    t.pool <- Some pool;
    t.workers <-
      Array.init
        (t.config.domains - 1)
        (fun i -> Domain.spawn (fun () -> worker_loop t pool (i + 1)))
  end

let stop_pool t =
  match t.pool with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.pm;
      pool.stop <- true;
      Condition.broadcast pool.go;
      Mutex.unlock pool.pm;
      Array.iter Domain.join t.workers;
      t.workers <- [||];
      t.pool <- None

let run_epoch_compute t ~until =
  match t.pool with
  | None -> Array.iter (fun shard -> run_shard_epoch shard ~until) t.shards
  | Some pool ->
      Mutex.lock pool.pm;
      pool.until <- until;
      pool.generation <- pool.generation + 1;
      pool.remaining <- Array.length t.workers;
      Condition.broadcast pool.go;
      Mutex.unlock pool.pm;
      let domains = t.config.domains in
      Array.iter
        (fun shard ->
          if shard.s_index mod domains = 0 then run_shard_epoch shard ~until)
        t.shards;
      Mutex.lock pool.pm;
      while pool.remaining > 0 do
        Condition.wait pool.finished pool.pm
      done;
      Mutex.unlock pool.pm

(* Owner-only, between epochs: drain every shard's outbox in shard
   order (FIFO within a shard).  Acks to the campaign server are
   absorbed here; device-to-device datagrams are re-sent on the
   destination shard's network, whose clock equals the source's at a
   barrier, so delivery scheduling is deterministic. *)
let record_ack t ~src ~payload =
  let s = t.server in
  let id = src - 1 in
  if id >= 0 && id < Array.length t.devices && not s.acked.(id) then
    match Message.decode payload with
    | exception Message.Parse_error _ -> ()
    | msg ->
        if msg.Message.msg_type = Message.Acknowledgement then begin
          s.acked.(id) <- true;
          s.acks_done <- s.acks_done + 1;
          if msg.Message.code = Message.code_changed then
            s.acks_ok <- s.acks_ok + 1
          else s.acks_rejected <- s.acks_rejected + 1
        end

let barrier_exchange t =
  let n = Array.length t.devices in
  Array.iter
    (fun shard ->
      while not (Queue.is_empty shard.outbox) do
        let src, dst, payload = Queue.pop shard.outbox in
        t.cross_shard <- t.cross_shard + 1;
        if dst = server_addr then record_ack t ~src ~payload
        else if dst >= 1 && dst <= n then
          let dst_shard = t.shards.((dst - 1) mod t.config.shards) in
          Network.send dst_shard.net ~src ~dst payload
        (* anything else is addressed into the void: drop, like a radio *)
      done)
    t.shards

(* --- campaign server --- *)

let push_to t dev =
  let shard = t.shards.(dev.id mod t.config.shards) in
  let msg =
    Message.make ~msg_type:Message.Confirmable
      ~options:(Message.options_of_path "suit")
      ~payload:(frame ~envelope:t.server.envelope ~firmware:t.server.firmware)
      ~code:Message.code_post
      ~message_id:(dev.id land 0xffff)
      ()
  in
  t.server.pushed_epoch.(dev.id) <- t.epoch;
  Network.send shard.net ~src:server_addr ~dst:dev.addr (Message.encode msg)

(* An ack normally lands two barriers after its push (frame latency ≪
   epoch); wait well past that before re-pushing so lossless runs never
   see a duplicate manifest. *)
let retry_after_epochs = 8

let push_wave t =
  let s = t.server in
  let n = Array.length t.devices in
  let budget = ref t.cfg_wave in
  while !budget > 0 && s.next_push < n do
    push_to t t.devices.(s.next_push);
    s.next_push <- s.next_push + 1;
    decr budget
  done;
  if !budget > 0 && s.next_push >= n && s.acks_done < n then begin
    let scanned = ref 0 in
    while !budget > 0 && !scanned < n do
      let id = s.retry_cursor in
      s.retry_cursor <- (s.retry_cursor + 1) mod n;
      incr scanned;
      if
        (not s.acked.(id))
        && s.pushed_epoch.(id) >= 0
        && t.epoch - s.pushed_epoch.(id) >= retry_after_epochs
      then begin
        push_to t t.devices.(id);
        decr budget
      end
    done
  end

(* --- driving --- *)

let run_one_epoch t ~push =
  t.epoch <- t.epoch + 1;
  let until = Int64.mul (Int64.of_int t.epoch) (epoch_cycles t) in
  run_epoch_compute t ~until;
  barrier_exchange t;
  if push then push_wave t

let run_epochs t n =
  for _ = 1 to n do
    run_one_epoch t ~push:false
  done

let send_datagram t ~src_device ~dst_device payload =
  let shard = t.shards.(src_device mod t.config.shards) in
  Network.send shard.net ~src:(src_device + 1) ~dst:(dst_device + 1) payload

let device_inbox t id = Mailbox.drain t.devices.(id).inbox

(* --- reporting --- *)

type report = {
  r_devices : int;
  r_shards : int;
  r_domains : int;
  r_epochs : int;
  r_virtual_ms : float;
  r_wall_ns : float;
  r_updates_ok : int;
  r_updates_rejected : int;
  r_telemetry_fires : int;
  r_cross_shard : int;
  r_timer_events : int;
  r_images_built : int;
  r_image_hits : int;
  r_incomplete : int;
  r_half_installed : int;
}

let sum_stats t f = Array.fold_left (fun acc s -> acc + f s.stats) 0 t.shards

let completion_counts t =
  let v2 = Bytes.of_string t.server.firmware in
  let incomplete = ref 0 and half = ref 0 in
  Array.iter
    (fun dev ->
      let seq_ok = Int64.compare dev.suit.Suit.sequence t.server.v2_sequence >= 0 in
      let fw_ok = Bytes.equal (Program.to_bytes (Container.program dev.container)) v2 in
      if not (seq_ok && fw_ok) then incr incomplete;
      if seq_ok <> fw_ok then incr half)
    t.devices;
  (!incomplete, !half)

let build_report t ~epochs ~wall_ns =
  let images_built =
    Array.fold_left (fun acc s -> acc + Hashtbl.length s.images) 0 t.shards
  in
  let spawns = sum_stats t (fun s -> s.s_spawns) in
  let incomplete, half_installed = completion_counts t in
  {
    r_devices = Array.length t.devices;
    r_shards = t.config.shards;
    r_domains = t.config.domains;
    r_epochs = epochs;
    r_virtual_ms = float_of_int (t.epoch * t.config.epoch_us) /. 1000.;
    r_wall_ns = wall_ns;
    r_updates_ok = sum_stats t (fun s -> s.s_updates_ok);
    r_updates_rejected = sum_stats t (fun s -> s.s_updates_rejected);
    r_telemetry_fires = sum_stats t (fun s -> s.s_telemetry);
    r_cross_shard = t.cross_shard;
    r_timer_events = sum_stats t (fun s -> s.s_timer_events);
    r_images_built = images_built;
    r_image_hits = spawns - images_built;
    r_incomplete = incomplete;
    r_half_installed = half_installed;
  }

let merge_metrics t report =
  if Obs.enabled () then begin
    Ometrics.set m_devices (float_of_int report.r_devices);
    Ometrics.add m_updates_ok report.r_updates_ok;
    Ometrics.add m_updates_rejected report.r_updates_rejected;
    Ometrics.add m_telemetry report.r_telemetry_fires;
    Ometrics.add m_cross_shard report.r_cross_shard;
    Ometrics.add m_epochs report.r_epochs
  end;
  ignore t

let run_campaign t =
  let n = Array.length t.devices in
  let obs_was = Obs.enabled () in
  Obs.set_enabled false;
  let t0 = Unix.gettimeofday () in
  let epoch0 = t.epoch in
  start_pool t;
  while
    (t.server.next_push < n || t.server.acks_done < n)
    && t.epoch - epoch0 < t.config.max_epochs
  do
    run_one_epoch t ~push:true
  done;
  (* drain one extra telemetry period so every device's new firmware
     provably fires before we inspect final state *)
  let drain =
    if t.config.telemetry_us = 0 then 0
    else ((t.config.telemetry_us + t.config.epoch_us - 1) / t.config.epoch_us) + 1
  in
  for _ = 1 to drain do
    run_one_epoch t ~push:false
  done;
  stop_pool t;
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  Obs.set_enabled obs_was;
  let report = build_report t ~epochs:(t.epoch - epoch0) ~wall_ns in
  merge_metrics t report;
  report

(* --- determinism witness --- *)

let device_states t =
  let kv_string store =
    Kvstore.bindings store
    |> List.map (fun (k, v) -> Printf.sprintf "%ld=%Ld" k v)
    |> String.concat ","
  in
  Array.map
    (fun dev ->
      Printf.sprintf "d%d ev=%d h=%x seq=%Ld tele=%d ok=%d rej=%d local=[%s] tenant=[%s]"
        dev.id dev.events dev.event_hash dev.suit.Suit.sequence
        dev.telemetry_fires dev.updates_ok dev.updates_rejected
        (kv_string (Container.local_store dev.container))
        (kv_string (Tenant.store dev.tenant)))
    t.devices

let fingerprint t =
  let b = Buffer.create 4096 in
  Array.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    (device_states t);
  Crypto.to_hex (Crypto.sha256 (Buffer.contents b))

let resident_words t = Obj.reachable_words (Obj.repr t.shards)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>devices %d  shards %d  domains %d@,\
     epochs %d  virtual %.1f ms  wall %.1f ms@,\
     updates ok %d  rejected %d  telemetry %d@,\
     cross-shard %d  timer events %d@,\
     images built %d  image hits %d@,\
     incomplete %d  half-installed %d@]"
    r.r_devices r.r_shards r.r_domains r.r_epochs r.r_virtual_ms
    (r.r_wall_ns /. 1e6) r.r_updates_ok r.r_updates_rejected
    r.r_telemetry_fires r.r_cross_shard r.r_timer_events r.r_images_built
    r.r_image_hits r.r_incomplete r.r_half_installed
