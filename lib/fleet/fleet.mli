(** Sharded fleet simulator: up to a million CoW device instances on one
    host, partitioned across an OCaml 5 Domain pool.

    Every simulated device owns a full stack — engine, hook, tenant,
    CoW kv delta, SUIT processor, radio node and cycle clock — but
    shares its firmware image per shard through the PR 8 image cache, so
    the marginal footprint stays a few KB per device.  Devices are
    statically partitioned into [shards] (independent of the domain
    count, which is what makes runs bit-deterministic across 1/2/4
    domains); each shard has its own kernel (the event wheel), network
    and RNG, and shards run lock-free between wheel-epoch barriers.
    Cross-shard CoAP datagrams are queued whole on the sending shard and
    exchanged by the owner domain at the barrier, in shard order.

    The headline scenario is {!run_campaign}: a rolling firmware-update
    campaign pushes a signed SUIT manifest to every device while
    periodic telemetry hooks keep firing. *)

type config = {
  devices : int;
  shards : int;  (** fixed partition count; determinism unit *)
  domains : int;  (** compute domains (1 = no workers) *)
  seed : int;
  epoch_us : int;  (** virtual length of one wheel epoch *)
  telemetry_us : int;  (** per-device telemetry period; 0 disables *)
  wave : int;  (** update pushes per epoch; 0 = devices/100 *)
  loss_permille : int;  (** per-frame radio loss inside a shard *)
  latency_us : int;  (** per-frame radio latency *)
  delta_quota : int option;  (** per-device CoW write budget *)
  max_epochs : int;  (** campaign safety stop *)
}

val default_config : config
(** 10k devices, 16 shards, 1 domain, 5 ms epochs, 50 ms telemetry. *)

type t

val create : config -> t
(** Boot the fleet: every device spawns the v1 firmware through its
    shard's image cache and parks its telemetry timer on the shard
    wheel.  Runs on the calling domain. *)

type report = {
  r_devices : int;
  r_shards : int;
  r_domains : int;
  r_epochs : int;
  r_virtual_ms : float;  (** campaign duration in simulated time *)
  r_wall_ns : float;  (** campaign duration in host time *)
  r_updates_ok : int;
  r_updates_rejected : int;
  r_telemetry_fires : int;
  r_cross_shard : int;  (** datagrams exchanged at barriers *)
  r_timer_events : int;
  r_images_built : int;  (** cold image builds across all shards *)
  r_image_hits : int;  (** warm spawns across all shards *)
  r_incomplete : int;  (** devices not running the new firmware *)
  r_half_installed : int;  (** must be 0: seq and firmware disagree *)
}

val run_campaign : t -> report
(** Push the signed v2 manifest to every device in rolling waves and run
    epochs until every device has acknowledged (or [max_epochs]); then
    drain one extra telemetry period so the new firmware provably fires.
    Starts the domain pool on entry and joins it before returning.
    Obs metrics are disabled while worker domains run and per-shard
    plain counters are merged into [fleet.*] metrics afterwards. *)

val send_datagram : t -> src_device:int -> dst_device:int -> bytes -> unit
(** Device-to-device traffic (cross-shard when the shards differ): the
    datagram leaves [src_device]'s radio during the next epoch and
    reaches the destination's mailbox/handler like any other traffic.
    Call between campaigns/epoch runs, not while domains are running. *)

val run_epochs : t -> int -> unit
(** Drive the wheel for [n] epochs without campaign traffic (telemetry
    and in-flight datagrams still run).  Single-domain unless a campaign
    started the pool earlier. *)

val device_inbox : t -> int -> bytes list
(** Drain the device's mailbox of non-SUIT datagrams (delivery order). *)

val device_states : t -> string array
(** One line per device: event count, event-order hash, SUIT sequence,
    and the final local/tenant kv bindings — the determinism witness
    compared across domain counts. *)

val fingerprint : t -> string
(** SHA-256 over {!device_states}. *)

val resident_words : t -> int
(** [Obj.reachable_words] over the shard array (devices, engines,
    images, wheels) — for marginal-footprint measurements. *)

val pp_report : Format.formatter -> report -> unit
