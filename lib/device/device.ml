(* A complete Femto-Container device: the composition an actual firmware
   would ship.

   Boot wires together the hosting engine (hooks from a static firmware
   table), the SUIT update processor, persistent container slots on the
   flash simulator, and the CoAP endpoints for over-the-network management:

     POST /suit/slot     upload a payload (block-wise capable)
     POST /suit/install  submit a signed manifest; verified payloads are
                         written to a flash slot and attached to their hook
     GET  /.well-known/core   resource discovery
     GET  /fc/containers      list running containers and their stats

   Rebooting (a new [boot] over the same flash) re-attaches every valid
   slot image — updates survive power cycles, as the paper's §5 flow
   requires. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Server = Femto_coap.Server
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Slots = Femto_flash.Slots
module Flash = Femto_flash.Flash
module Crypto = Femto_crypto.Crypto

(* The static firmware hook table: what launchpads this device build
   provides (paper Listing 1 — hooks are compiled in). *)
type hook_spec = {
  uuid : string;
  name : string;
  ctx_size : int;
  ctx_perm : Femto_vm.Region.perm;
  policy : Contract.policy;
}

let hook_spec ?(ctx_perm = Femto_vm.Region.Read_only)
    ?(policy = Contract.offer_all) ~uuid ~name ~ctx_size () =
  { uuid; name; ctx_size; ctx_perm; policy }

type identity = {
  vendor_id : string;
  class_id : string;
  update_key : Cose.key;
}

type t = {
  kernel : Kernel.t;
  engine : Engine.t;
  slots : Slots.t;
  suit : Suit.device;
  server : Server.t;
  identity : identity;
  tenant : Femto_core.Tenant.t; (* owner of network-installed containers *)
  mutable installed : (string * Container.t) list; (* hook uuid -> container *)
  mutable pending_payload : string;
  (* streaming-upload state: the payload digest/size computed while
     Block1 chunks arrived, and the flash stream the chunks were
     programmed into (finalized at install time) *)
  mutable pending_digest : Suit.digest_hint option;
  mutable pending_stream : Slots.stream option;
  mutable boots : int64;
}

let kernel t = t.kernel
let suit_processor t = t.suit
let suit_sequence t = t.suit.Suit.sequence
let suit_accepted t = t.suit.Suit.accepted
let suit_rejected t = t.suit.Suit.rejected
let engine t = t.engine
let slots t = t.slots
let server t = t.server
let containers t = List.map snd t.installed

(* Attach a restored or freshly-installed image to its hook. *)
let attach_image t ~hook_uuid payload =
  match Femto_ebpf.Program.of_bytes (Bytes.of_string payload) with
  | exception Femto_ebpf.Program.Truncated m -> Error m
  | program -> (
      match List.assoc_opt hook_uuid t.installed with
      | Some existing ->
          (* hot update of the container already on this hook *)
          Result.map_error Engine.attach_error_to_string
            (Engine.update_program t.engine existing program)
      | None -> (
          let container =
            Container.create
              ~name:(Printf.sprintf "net-%s" (String.sub hook_uuid 0 8))
              ~tenant:t.tenant
              ~contract:
                (Contract.require
                   Contract.[ Kv_local; Kv_tenant; Kv_global; Time; Sensors ])
              program
          in
          match Engine.attach t.engine ~hook_uuid container with
          | Ok _ ->
              t.installed <- (hook_uuid, container) :: t.installed;
              Ok ()
          | Error e -> Error (Engine.attach_error_to_string e)))

(* The SUIT install callback: verify-then-persist-then-attach.  The slot
   header is written only after the engine's pre-flight verification
   passed, so a slot never holds a program the device would refuse to
   run.

   When the payload streamed in over Block1, its bytes are already
   programmed into a flash slot ([pending_stream]); install then only
   writes the header (the commit point) — no second pass over the
   payload.  Otherwise it falls back to a whole-slot [Slots.store]. *)
let install_image t ~sequence ~storage_uuid payload =
  match attach_image t ~hook_uuid:storage_uuid payload with
  | Error m -> Error m
  | Ok () -> (
      let stale_slots () =
        (* drop older images of this hook so stale versions never linger *)
        List.filter_map
          (fun (slot, image) ->
            if
              String.equal image.Slots.hook_uuid storage_uuid
              && Int64.compare image.Slots.sequence sequence < 0
            then Some slot
            else None)
          (Slots.scan t.slots)
      in
      let digest =
        match t.pending_digest with
        | Some hint when hint.Suit.bytes = String.length payload ->
            Some hint.Suit.streamed
        | Some _ | None -> None
      in
      match t.pending_stream with
      | Some stream when Slots.stream_written stream = String.length payload -> (
          t.pending_stream <- None;
          let digest =
            match digest with Some d -> d | None -> Crypto.sha256 payload
          in
          match Slots.finish_stream stream ~sequence ~hook_uuid:storage_uuid ~digest with
          | Ok () ->
              List.iter (fun slot -> ignore (Slots.erase t.slots ~slot)) (stale_slots ());
              Ok ()
          | Error e -> Error (Slots.error_to_string e))
      | Some _ | None -> (
          (* overwrite the slot already holding this hook's image, else
             the usual victim slot *)
          let slot =
            match
              List.find_opt
                (fun (_, image) ->
                  String.equal image.Slots.hook_uuid storage_uuid)
                (Slots.scan t.slots)
            with
            | Some (slot, _) -> slot
            | None -> Slots.victim_slot t.slots
          in
          match
            Slots.store ?digest t.slots ~slot
              { Slots.sequence; hook_uuid = storage_uuid; payload }
          with
          | Ok () -> Ok ()
          | Error e -> Error (Slots.error_to_string e)))

let containers_report t =
  String.concat "\n"
    (List.map
       (fun (uuid, container) ->
         Printf.sprintf "%s %s runs=%d faults=%d bytes=%d" uuid
           (Container.name container)
           (Container.executions container)
           (Container.faults container)
           (Container.bytecode_size container))
       t.installed)

let register_management_endpoints t =
  (* streaming upload: each Block1 chunk is programmed straight into the
     victim flash slot while an incremental SHA-256 runs in the CoAP
     layer; by the time the last block is acknowledged the payload is on
     flash (headerless, so not yet committed) and its digest is known *)
  Server.register_upload t.server ~path:"/suit/slot"
    {
      Server.start =
        (fun () ->
          t.pending_digest <- None;
          let slot = Slots.victim_slot t.slots in
          match Slots.begin_stream t.slots ~slot with
          | Ok stream -> t.pending_stream <- Some stream
          | Error e -> failwith (Slots.error_to_string e));
      chunk =
        (fun data ->
          match t.pending_stream with
          | None -> ()
          | Some stream -> (
              match Slots.stream_write stream data with
              | Ok () -> ()
              | Error e -> failwith (Slots.error_to_string e)));
      finish =
        (fun ~src:_ ~digest ~size request ->
          t.pending_payload <- request.Message.payload;
          t.pending_digest <- Some { Suit.streamed = digest; bytes = size };
          Server.respond Message.code_changed);
      abort =
        (fun () ->
          t.pending_stream <- None;
          t.pending_digest <- None);
    };
  Server.register t.server ~path:"/suit/install" (fun ~src:_ request ->
      let hints =
        match t.pending_digest with
        | None -> None
        | Some hint ->
            Some
              (List.map
                 (fun hook -> (Femto_core.Hook.uuid hook, hint))
                 (Engine.hooks t.engine))
      in
      match
        Suit.process ?digests:hints t.suit ~envelope:request.Message.payload
          ~payloads:
            (List.map
               (fun hook -> (Femto_core.Hook.uuid hook, t.pending_payload))
               (Engine.hooks t.engine))
      with
      | Ok _manifest -> Server.respond Message.code_changed
      | Error e ->
          Server.respond
            ~payload:(Suit.error_to_string e)
            Message.code_unauthorized);
  Server.register t.server ~path:"/.well-known/core" (fun ~src:_ _ ->
      Server.respond
        ~payload:
          "</suit/slot>;rt=\"suit.slot\",</suit/install>;rt=\"suit.install\",\
           </fc/containers>;rt=\"fc.list\""
        Message.code_content);
  Server.register t.server ~path:"/fc/containers" (fun ~src:_ _ ->
      Server.respond ~payload:(containers_report t) Message.code_content)

(* [boot] brings a device up: engine + hooks, SUIT processor, management
   endpoints, then re-attach every valid image found on the flash. *)
let boot ?(platform = Femto_platform.Platform.cortex_m4) ~identity ~hooks
    ~flash ~slot_count ~network ~addr () =
  let kernel = Network.kernel network in
  let engine = Engine.create ~platform ~kernel () in
  List.iter
    (fun spec ->
      ignore
        (Engine.register_hook engine ~uuid:spec.uuid ~name:spec.name
           ~ctx_size:spec.ctx_size ~ctx_perm:spec.ctx_perm ~policy:spec.policy
           ()))
    hooks;
  let slots = Slots.create ~flash ~count:slot_count in
  let server = Server.create ~network ~addr () in
  let tenant = Engine.add_tenant engine "network-tenant" in
  let t_ref = ref None in
  let suit =
    Suit.create_device ~vendor_id:identity.vendor_id
      ~class_id:identity.class_id ~key:identity.update_key
      ~install:(fun ~sequence ~storage_uuid payload ->
        match !t_ref with
        | Some t -> install_image t ~sequence ~storage_uuid payload
        | None -> Error "device not booted")
      ~known_storage:(fun uuid -> Engine.find_hook engine uuid <> None)
      ()
  in
  let t =
    {
      kernel;
      engine;
      slots;
      suit;
      server;
      identity;
      tenant;
      installed = [];
      pending_payload = "";
      pending_digest = None;
      pending_stream = None;
      boots = 0L;
    }
  in
  t_ref := Some t;
  register_management_endpoints t;
  (* restore persisted containers: one image per hook (the highest
     sequence number wins), and the SUIT rollback counter resumes from the
     newest install *)
  let newest_per_hook = Hashtbl.create 4 in
  List.iter
    (fun (_, image) ->
      match Hashtbl.find_opt newest_per_hook image.Slots.hook_uuid with
      | Some existing
        when Int64.compare existing.Slots.sequence image.Slots.sequence >= 0 ->
          ()
      | Some _ | None ->
          Hashtbl.replace newest_per_hook image.Slots.hook_uuid image)
    (Slots.scan slots);
  Hashtbl.iter
    (fun _ image ->
      match attach_image t ~hook_uuid:image.Slots.hook_uuid image.Slots.payload with
      | Ok () ->
          if Int64.compare image.Slots.sequence t.suit.Suit.sequence > 0 then
            t.suit.Suit.sequence <- image.Slots.sequence
      | Error _ -> () (* a corrupt/unattachable image is skipped, not fatal *))
    newest_per_hook;
  t
