(* wasm_mini interpreter: structured-control stack machine over a linear
   memory, in the style of WASM3's continuation-less interpreter core. *)

open Ast

type trap =
  | Unreachable_executed
  | Stack_underflow
  | Type_mismatch
  | Out_of_bounds of { addr : int; size : int }
  | Division_by_zero
  | Call_stack_exhausted
  | Fuel_exhausted
  | No_such_export of string

let trap_to_string = function
  | Unreachable_executed -> "unreachable executed"
  | Stack_underflow -> "operand stack underflow"
  | Type_mismatch -> "operand type mismatch"
  | Out_of_bounds { addr; size } ->
      Printf.sprintf "out-of-bounds %d-byte access at %d" size addr
  | Division_by_zero -> "division by zero"
  | Call_stack_exhausted -> "call stack exhausted"
  | Fuel_exhausted -> "fuel exhausted"
  | No_such_export name -> Printf.sprintf "no export %S" name

exception Trap of trap

type instance = {
  modul : modul;
  memory : bytes; (* memory_pages * 64 KiB, the Table 1 RAM driver *)
  globals : value array;
  mutable fuel : int; (* finite-execution budget, like the VM's N_i*N_b *)
  mutable instrs_executed : int;
}

let global_value g =
  match g.gtype with
  | I32 -> V_i32 (Int64.to_int32 g.init)
  | I64 -> V_i64 g.init

let instantiate ?(fuel = 50_000_000) (m : modul) =
  let memory = Bytes.make (m.memory_pages * page_size) '\000' in
  List.iter
    (fun seg ->
      if seg.offset < 0 || seg.offset + String.length seg.bytes > Bytes.length memory
      then invalid_arg "instantiate: data segment out of bounds"
      else Bytes.blit_string seg.bytes 0 memory seg.offset (String.length seg.bytes))
    m.data;
  {
    modul = m;
    memory;
    globals = Array.map global_value m.globals;
    fuel;
    instrs_executed = 0;
  }

let memory_size_bytes t = Bytes.length t.memory

let load_memory t ~offset data =
  if offset + Bytes.length data > Bytes.length t.memory then
    invalid_arg "load_memory: does not fit";
  Bytes.blit data 0 t.memory offset (Bytes.length data)

(* Branches unwind [n] nested blocks: implemented with exceptions carrying
   the remaining depth. *)
exception Branch of int
exception Returning of value option

let pop = function
  | v :: rest -> (v, rest)
  | [] -> raise (Trap Stack_underflow)

let pop_i32 stack =
  match pop stack with
  | V_i32 v, rest -> (v, rest)
  | V_i64 _, _ -> raise (Trap Type_mismatch)

let pop_i64 stack =
  match pop stack with
  | V_i64 v, rest -> (v, rest)
  | V_i32 _, _ -> raise (Trap Type_mismatch)

let eval_i32_binop op a b =
  let open Int32 in
  match (op : ibinop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div_u -> if equal b 0l then raise (Trap Division_by_zero) else unsigned_div a b
  | Div_s -> if equal b 0l then raise (Trap Division_by_zero) else div a b
  | Rem_u -> if equal b 0l then raise (Trap Division_by_zero) else unsigned_rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int b land 31)
  | Shr_u -> shift_right_logical a (to_int b land 31)
  | Shr_s -> shift_right a (to_int b land 31)
  | Rotl ->
      let n = to_int b land 31 in
      if n = 0 then a else logor (shift_left a n) (shift_right_logical a (32 - n))
  | Rotr ->
      let n = to_int b land 31 in
      if n = 0 then a else logor (shift_right_logical a n) (shift_left a (32 - n))

let eval_i64_binop op a b =
  let open Int64 in
  match (op : ibinop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div_u -> if equal b 0L then raise (Trap Division_by_zero) else unsigned_div a b
  | Div_s -> if equal b 0L then raise (Trap Division_by_zero) else div a b
  | Rem_u -> if equal b 0L then raise (Trap Division_by_zero) else unsigned_rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int b land 63)
  | Shr_u -> shift_right_logical a (to_int b land 63)
  | Shr_s -> shift_right a (to_int b land 63)
  | Rotl ->
      let n = to_int b land 63 in
      if n = 0 then a else logor (shift_left a n) (shift_right_logical a (64 - n))
  | Rotr ->
      let n = to_int b land 63 in
      if n = 0 then a else logor (shift_right_logical a n) (shift_left a (64 - n))

(* Bit-counting unops, shared by reference and fast engines via the i64
   form (the i32 form masks and adjusts). *)
let count_leading_zeros_64 v =
  if Int64.equal v 0L then 64
  else begin
    let n = ref 0 in
    let v = ref v in
    (* shift left until the top bit is set *)
    while Int64.equal (Int64.shift_right_logical !v 63) 0L do
      incr n;
      v := Int64.shift_left !v 1
    done;
    !n
  end

let count_trailing_zeros_64 v =
  if Int64.equal v 0L then 64
  else begin
    let n = ref 0 in
    let v = ref v in
    while Int64.equal (Int64.logand !v 1L) 0L do
      incr n;
      v := Int64.shift_right_logical !v 1
    done;
    !n
  end

let popcount_64 v =
  let n = ref 0 in
  for i = 0 to 63 do
    if not (Int64.equal (Int64.logand (Int64.shift_right_logical v i) 1L) 0L) then
      incr n
  done;
  !n

let eval_i32_unop op a =
  let wide = Int64.logand (Int64.of_int32 a) 0xFFFF_FFFFL in
  match (op : iunop) with
  | Clz -> Int32.of_int (count_leading_zeros_64 wide - 32)
  | Ctz -> Int32.of_int (min 32 (count_trailing_zeros_64 wide))
  | Popcnt -> Int32.of_int (popcount_64 wide)

let eval_i64_unop op a =
  match (op : iunop) with
  | Clz -> Int64.of_int (count_leading_zeros_64 a)
  | Ctz -> Int64.of_int (count_trailing_zeros_64 a)
  | Popcnt -> Int64.of_int (popcount_64 a)

let eval_i32_relop op a b =
  let c = Int32.compare a b and u = Int32.unsigned_compare a b in
  match (op : irelop) with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt_u -> u < 0
  | Lt_s -> c < 0
  | Gt_u -> u > 0
  | Gt_s -> c > 0
  | Le_u -> u <= 0
  | Le_s -> c <= 0
  | Ge_u -> u >= 0
  | Ge_s -> c >= 0

let eval_i64_relop op a b =
  let c = Int64.compare a b and u = Int64.unsigned_compare a b in
  match (op : irelop) with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt_u -> u < 0
  | Lt_s -> c < 0
  | Gt_u -> u > 0
  | Gt_s -> c > 0
  | Le_u -> u <= 0
  | Le_s -> c <= 0
  | Ge_u -> u >= 0
  | Ge_s -> c >= 0

let bool_i32 b = V_i32 (if b then 1l else 0l)

let check_bounds t addr size =
  if addr < 0 || addr + size > Bytes.length t.memory then
    raise (Trap (Out_of_bounds { addr; size }))

let effective_addr base offset =
  let addr = Int32.to_int base + offset in
  addr

let max_call_depth = 64

let rec exec_body t ~call_depth locals body stack =
  List.fold_left (fun stack instr -> exec t ~call_depth locals instr stack) stack body

and exec t ~call_depth locals instr stack =
  t.fuel <- t.fuel - 1;
  t.instrs_executed <- t.instrs_executed + 1;
  if t.fuel <= 0 then raise (Trap Fuel_exhausted);
  match instr with
  | Unreachable -> raise (Trap Unreachable_executed)
  | Nop -> stack
  | Block body -> (
      try exec_body t ~call_depth locals body stack with
      | Branch 0 -> stack (* branch to a block: exit it *)
      | Branch n -> raise (Branch (n - 1)) (* outer label: unwind one level *))
  | Loop body -> (
      let rec iterate stack =
        match exec_body t ~call_depth locals body stack with
        | stack' -> stack'
        | exception Branch 0 -> iterate stack (* branch to a loop: restart *)
      in
      try iterate stack with Branch n -> raise (Branch (n - 1)))
  | If (then_, else_) -> (
      let cond, stack = pop_i32 stack in
      let body = if Int32.equal cond 0l then else_ else then_ in
      try exec_body t ~call_depth locals body stack with
      | Branch 0 -> stack
      | Branch n -> raise (Branch (n - 1)))
  | Br depth -> raise (Branch depth)
  | Br_if depth ->
      let cond, stack = pop_i32 stack in
      if Int32.equal cond 0l then stack else raise (Branch depth)
  | Return ->
      raise (Returning (match stack with v :: _ -> Some v | [] -> None))
  | Call index ->
      let callee = t.modul.funcs.(index) in
      let nparams = List.length callee.ftype.params in
      let rec take n stack acc =
        if n = 0 then (acc, stack)
        else
          let v, stack = pop stack in
          take (n - 1) stack (v :: acc)
      in
      let args, stack = take nparams stack [] in
      let result = invoke t ~call_depth:(call_depth + 1) index args in
      (match result with Some v -> v :: stack | None -> stack)
  | Drop ->
      let _, stack = pop stack in
      stack
  | Local_get i -> locals.(i) :: stack
  | Local_set i ->
      let v, stack = pop stack in
      locals.(i) <- v;
      stack
  | Local_tee i ->
      let v, _ = pop stack in
      locals.(i) <- v;
      stack
  | Global_get i -> t.globals.(i) :: stack
  | Global_set i ->
      let v, stack = pop stack in
      t.globals.(i) <- v;
      stack
  | I32_const v -> V_i32 v :: stack
  | I64_const v -> V_i64 v :: stack
  | Binop (I32, op) ->
      let b, stack = pop_i32 stack in
      let a, stack = pop_i32 stack in
      V_i32 (eval_i32_binop op a b) :: stack
  | Binop (I64, op) ->
      let b, stack = pop_i64 stack in
      let a, stack = pop_i64 stack in
      V_i64 (eval_i64_binop op a b) :: stack
  | Unop (I32, op) ->
      let a, stack = pop_i32 stack in
      V_i32 (eval_i32_unop op a) :: stack
  | Unop (I64, op) ->
      let a, stack = pop_i64 stack in
      V_i64 (eval_i64_unop op a) :: stack
  | Relop (I32, op) ->
      let b, stack = pop_i32 stack in
      let a, stack = pop_i32 stack in
      bool_i32 (eval_i32_relop op a b) :: stack
  | Relop (I64, op) ->
      let b, stack = pop_i64 stack in
      let a, stack = pop_i64 stack in
      bool_i32 (eval_i64_relop op a b) :: stack
  | I32_eqz ->
      let v, stack = pop_i32 stack in
      bool_i32 (Int32.equal v 0l) :: stack
  | I64_eqz ->
      let v, stack = pop_i64 stack in
      bool_i32 (Int64.equal v 0L) :: stack
  | I32_wrap_i64 ->
      let v, stack = pop_i64 stack in
      V_i32 (Int64.to_int32 v) :: stack
  | I64_extend_i32_u ->
      let v, stack = pop_i32 stack in
      V_i64 (Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL) :: stack
  | I32_load offset ->
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 4;
      V_i32 (Bytes.get_int32_le t.memory addr) :: stack
  | I64_load offset ->
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 8;
      V_i64 (Bytes.get_int64_le t.memory addr) :: stack
  | I32_load8_u offset ->
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 1;
      V_i32 (Int32.of_int (Bytes.get_uint8 t.memory addr)) :: stack
  | I32_load16_u offset ->
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 2;
      V_i32 (Int32.of_int (Bytes.get_uint16_le t.memory addr)) :: stack
  | I32_store offset ->
      let v, stack = pop_i32 stack in
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 4;
      Bytes.set_int32_le t.memory addr v;
      stack
  | I64_store offset ->
      let v, stack = pop_i64 stack in
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 8;
      Bytes.set_int64_le t.memory addr v;
      stack
  | I32_store8 offset ->
      let v, stack = pop_i32 stack in
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 1;
      Bytes.set_uint8 t.memory addr (Int32.to_int v land 0xff);
      stack
  | I32_store16 offset ->
      let v, stack = pop_i32 stack in
      let base, stack = pop_i32 stack in
      let addr = effective_addr base offset in
      check_bounds t addr 2;
      Bytes.set_uint16_le t.memory addr (Int32.to_int v land 0xffff);
      stack
  | Memory_size -> V_i32 (Int32.of_int (Bytes.length t.memory / page_size)) :: stack
  | Memory_grow ->
      (* fixed-size memory in this subset: growing fails (-1), as it would
         on a microcontroller without spare RAM *)
      let _, stack = pop_i32 stack in
      V_i32 (-1l) :: stack

and invoke t ~call_depth index args =
  if call_depth > max_call_depth then raise (Trap Call_stack_exhausted);
  let func = t.modul.funcs.(index) in
  let default_value = function I32 -> V_i32 0l | I64 -> V_i64 0L in
  let locals =
    Array.of_list (args @ List.map default_value func.locals)
  in
  let result =
    try
      let stack = exec_body t ~call_depth locals func.body [] in
      (match (stack, func.ftype.results) with
      | v :: _, _ :: _ -> Some v
      | _, [] -> None
      | [], _ :: _ -> raise (Trap Stack_underflow))
    with
    | Returning v -> v
    | Branch _ -> None (* branch out of the function body: return *)
  in
  result

(* [call t ~name args] invokes an exported function. *)
let call t ~name args =
  match
    List.find_opt (fun e -> String.equal e.name name) t.modul.exports
  with
  | None -> Error (No_such_export name)
  | Some export -> (
      try Ok (invoke t ~call_depth:0 export.func_index args)
      with Trap trap -> Error trap)
