(* Device shell, in the spirit of RIOT's `shell` module.

   A line-oriented command interpreter over the device composition: the
   local-console counterpart of the CoAP management endpoints.  Commands
   are pure string -> string so the shell is equally usable from a UART
   simulator, tests, or an interactive loop.

     > help
     > ps                      threads and scheduler state
     > fc list                 containers, hooks, stats
     > fc run <hook-uuid>      fire a hook manually
     > fc disasm <hook-uuid>   disassemble an installed container
     > kv get <key>            read the global key-value store
     > kv set <key> <value>
     > suit seq                rollback counter
     > slots                   flash slot inventory
     > free                    RAM accounting
     > uptime                  virtual clock *)

module Device = Femto_device.Device
module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Kvstore = Femto_core.Kvstore
module Kernel = Femto_rtos.Kernel
module Slots = Femto_flash.Slots

type t = { device : Device.t; mutable history : string list }

let create device = { device; history = [] }

let lines fmt = Printf.sprintf fmt

let help () =
  String.concat "\n"
    [
      "help                 this text";
      "ps                   scheduler state";
      "fc list              installed containers";
      "fc run <hook-uuid>   trigger a hook";
      "fc disasm <hook-uuid> disassemble a container";
      "kv get <key>         read the global store";
      "kv set <key> <value> write the global store";
      "suit seq             SUIT rollback counter";
      "slots                flash slot inventory";
      "free                 RAM accounting";
      "uptime               virtual clock";
    ]

let ps t =
  let kernel = Device.kernel t.device in
  lines "tick: %Ld cycles | context switches: %d | current tid: %d"
    (Kernel.now kernel)
    (Kernel.context_switches kernel)
    (Kernel.current_tid kernel)

let fc_list t =
  let engine = Device.engine t.device in
  let rows =
    List.concat_map
      (fun hook ->
        List.map
          (fun container ->
            lines "%-40s %-20s runs=%-5d faults=%-3d %4d B"
              (Femto_core.Hook.uuid hook)
              (Container.name container)
              (Container.executions container)
              (Container.faults container)
              (Container.bytecode_size container))
          (Femto_core.Hook.attached hook))
      (Engine.hooks engine)
  in
  if rows = [] then "(no containers attached)" else String.concat "\n" rows

let fc_run t uuid =
  match Engine.trigger_by_uuid (Device.engine t.device) ~uuid () with
  | Error e -> Engine.attach_error_to_string e
  | Ok [] -> "hook fired: no containers attached"
  | Ok reports ->
      String.concat "\n"
        (List.map
           (fun report ->
             match report.Engine.result with
             | Ok v ->
                 lines "%s -> %Ld (%d cycles)"
                   (Container.name report.Engine.container)
                   v report.Engine.vm_cycles
             | Error fault ->
                 lines "%s -> FAULT: %s"
                   (Container.name report.Engine.container)
                   (Femto_vm.Fault.to_string fault))
           reports)

let fc_disasm t uuid =
  match Engine.find_hook (Device.engine t.device) uuid with
  | None -> lines "no hook %s" uuid
  | Some hook -> (
      match Femto_core.Hook.attached hook with
      | [] -> "(hook has no containers)"
      | containers ->
          String.concat "\n--\n"
            (List.map
               (fun container ->
                 Femto_ebpf.Disasm.to_string
                   ~helper_name:(fun id ->
                     List.find_map
                       (fun (name, i) -> if i = id then Some name else None)
                       Femto_core.Syscall.standard_names)
                   (Container.program container))
               containers))

let kv_get t key =
  match Int32.of_string_opt key with
  | None -> "usage: kv get <numeric key>"
  | Some key ->
      lines "%ld = %Ld" key
        (Kvstore.fetch (Engine.global_store (Device.engine t.device)) key)

let kv_set t key value =
  match (Int32.of_string_opt key, Int64.of_string_opt value) with
  | Some key, Some value -> (
      match
        Kvstore.store (Engine.global_store (Device.engine t.device)) key value
      with
      | Ok () -> "ok"
      | Error (`Store_full name) -> lines "store %s is full" name)
  | _ -> "usage: kv set <numeric key> <numeric value>"

let suit_seq t =
  lines "sequence: %Ld (accepted %d, rejected %d)"
    (Device.suit_sequence t.device)
    (Device.suit_accepted t.device)
    (Device.suit_rejected t.device)

let slots t =
  let slots = Device.slots t.device in
  let rows =
    List.map
      (fun (slot, image) ->
        lines "slot %d: seq=%Ld hook=%s %d B" slot image.Slots.sequence
          image.Slots.hook_uuid
          (String.length image.Slots.payload))
      (Slots.scan slots)
  in
  let used = List.length rows in
  String.concat "\n"
    (rows @ [ lines "%d/%d slots used, %d B capacity each" used
                (Slots.count slots) (Slots.capacity slots) ])

let free t =
  let engine = Device.engine t.device in
  let container_ram =
    List.fold_left
      (fun acc container ->
        acc
        +
        match container.Container.instance with
        | Some (Container.Fc_instance vm) -> Femto_vm.Vm.ram_bytes vm
        | Some (Container.Certfc_instance vm) -> Femto_certfc.Interp.ram_bytes vm
        | None -> 0)
      0
      (Device.containers t.device)
  in
  let store_ram =
    Kvstore.ram_bytes (Engine.global_store engine)
    + List.fold_left
        (fun acc tenant -> acc + Kvstore.ram_bytes (Femto_core.Tenant.store tenant))
        0 (Engine.tenants engine)
  in
  lines "container instances: %d B | key-value stores: %d B" container_ram
    store_ram

let uptime t =
  let kernel = Device.kernel t.device in
  lines "%.3f ms virtual (%Ld cycles @%d MHz)"
    (Kernel.now_us kernel /. 1000.0)
    (Kernel.now kernel)
    (Femto_rtos.Clock.frequency_hz (Kernel.clock kernel) / 1_000_000)

(* [exec t line] runs one command line and returns its output. *)
let exec t line =
  t.history <- line :: t.history;
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ""
  | [ "help" ] -> help ()
  | [ "ps" ] -> ps t
  | [ "fc"; "list" ] -> fc_list t
  | [ "fc"; "run"; uuid ] -> fc_run t uuid
  | [ "fc"; "disasm"; uuid ] -> fc_disasm t uuid
  | [ "kv"; "get"; key ] -> kv_get t key
  | [ "kv"; "set"; key; value ] -> kv_set t key value
  | [ "suit"; "seq" ] -> suit_seq t
  | [ "slots" ] -> slots t
  | [ "free" ] -> free t
  | [ "uptime" ] -> uptime t
  | [ "history" ] -> String.concat "\n" (List.rev t.history)
  | command :: _ -> lines "unknown command %S (try 'help')" command

(* [script t input] runs a newline-separated command script, echoing each
   command with its output — the form used by the example and tests. *)
let script t input =
  String.split_on_char '\n' input
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line -> Printf.sprintf "> %s\n%s" (String.trim line) (exec t line))
  |> String.concat "\n"
