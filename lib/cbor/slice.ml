(* A read-only view into a string: offset + length, no copy.

   The secure-update path decodes CBOR directly out of the CoAP request
   buffer; slices let byte/text strings, COSE payloads and SUIT manifest
   fields reference the original buffer and materialise (to_string) only
   when a caller actually needs an owned copy. *)

type t = { base : string; off : int; len : int }

let make base ~off ~len =
  if off < 0 || len < 0 || off + len > String.length base then
    invalid_arg "Slice.make: out of bounds"
  else { base; off; len }

let of_string s = { base = s; off = 0; len = String.length s }

let base t = t.base
let offset t = t.off
let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Slice.get: index out of bounds"
  else String.unsafe_get t.base (t.off + i)

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Slice.sub: out of bounds"
  else { base = t.base; off = t.off + off; len }

(* The only copying operation; a whole-string slice returns the base
   unchanged. *)
let to_string t =
  if t.off = 0 && t.len = String.length t.base then t.base
  else String.sub t.base t.off t.len

let equal_string t s =
  t.len = String.length s
  && begin
       let rec loop i =
         i >= t.len
         || Char.equal (String.unsafe_get t.base (t.off + i)) (String.unsafe_get s i)
            && loop (i + 1)
       in
       loop 0
     end

let equal a b =
  a.len = b.len
  && begin
       let rec loop i =
         i >= a.len
         || Char.equal
              (String.unsafe_get a.base (a.off + i))
              (String.unsafe_get b.base (b.off + i))
            && loop (i + 1)
       in
       loop 0
     end

let add_to_buffer buf t = Buffer.add_substring buf t.base t.off t.len
