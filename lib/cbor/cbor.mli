(** CBOR (RFC 8949) encoder/decoder.

    SUIT manifests and COSE envelopes — the paper's secure-update metadata
    (§5) — are CBOR objects.  Encoding is deterministic (definite lengths,
    shortest-form heads); the decoder also accepts indefinite-length items
    so foreign manifests parse. *)

type t =
  | Int of int64  (** both major types 0 and 1 *)
  | Bytes of string
  | Text of string
  | Array of t list
  | Map of (t * t) list
  | Tag of int64 * t
  | Bool of bool
  | Null
  | Undefined
  | Simple of int
  | Float of float

exception Decode_error of string

val encode : t -> string
(** Deterministic serialization (shortest-form heads, definite lengths). *)

val write_head : Buffer.t -> int -> int64 -> unit
(** [write_head buf major arg] appends one shortest-form CBOR head.  For
    builders (e.g. the COSE Sig_structure) that frame raw byte runs
    around existing buffers without building a tree. *)

val decode : string -> t
(** Decode a complete item; raises {!Decode_error} on malformed input or
    trailing bytes. *)

val decode_partial : string -> t * int
(** Decode one item from the front; returns it with the bytes consumed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Accessors used by SUIT/COSE} *)

val find_map_entry : t -> t -> t option
(** [find_map_entry map key] looks a key up in a [Map] item. *)

val as_int : t -> int64 option
val as_bytes : t -> string option
val as_text : t -> string option
val as_array : t -> t list option

(** {2 Zero-copy view decoder}

    Decodes the same grammar as {!decode} over a cursor into the original
    buffer: byte and text strings come back as {!Slice.t} windows (no
    copy; indefinite-length strings are the one materialised exception).
    The update path (COSE/SUIT) parses through views; {!view_to_tree}
    recovers exactly the tree {!decode} would produce, which the tests
    check differentially. *)

type view =
  | V_int of int64
  | V_bytes of Slice.t
  | V_text of Slice.t
  | V_array of view list
  | V_map of (view * view) list
  | V_tag of int64 * view
  | V_bool of bool
  | V_null
  | V_undefined
  | V_simple of int
  | V_float of float

val decode_view : string -> view
(** Decode a complete item; raises {!Decode_error} on malformed input or
    trailing bytes, exactly as {!decode} does. *)

val decode_view_slice : Slice.t -> view
(** Decode a complete item out of a window of a larger buffer; returned
    slices alias that same buffer. *)

val view_to_tree : view -> t

val vfind_int : view -> int64 -> view option
(** Look up an [Int]-keyed entry in a [V_map]. *)

val vas_int : view -> int64 option
val vas_bytes : view -> Slice.t option
val vas_text : view -> Slice.t option
val vas_array : view -> view list option
