(** A read-only view into a string: offset + length, no copy.

    The zero-copy decode path of the secure-update pipeline returns byte
    and text strings as slices of the original request buffer; callers
    materialise an owned copy only via {!to_string}. *)

type t = private { base : string; off : int; len : int }

val make : string -> off:int -> len:int -> t
(** Raises [Invalid_argument] when the window is out of bounds. *)

val of_string : string -> t
(** The whole string as a slice (no copy). *)

val base : t -> string
val offset : t -> int
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** Raises [Invalid_argument] out of bounds. *)

val sub : t -> off:int -> len:int -> t
(** A sub-view; no copy.  Raises [Invalid_argument] out of bounds. *)

val to_string : t -> string
(** Materialise.  A whole-string slice returns the base unchanged;
    otherwise this is the one copying operation on slices. *)

val equal_string : t -> string -> bool
(** Content equality against an owned string, without materialising. *)

val equal : t -> t -> bool
val add_to_buffer : Buffer.t -> t -> unit
