(* CBOR (RFC 8949) encoder/decoder.

   SUIT manifests and COSE envelopes — the paper's secure-update metadata
   (§5, "Low-power Secure Runtime Update Primitives") — are CBOR objects,
   so this codec is the foundation of the update path.  Encoding is
   deterministic (definite lengths, shortest-form heads); the decoder also
   accepts indefinite-length items so foreign manifests parse. *)

type t =
  | Int of int64 (* both major types 0 and 1; the int64 range suffices *)
  | Bytes of string
  | Text of string
  | Array of t list
  | Map of (t * t) list
  | Tag of int64 * t
  | Bool of bool
  | Null
  | Undefined
  | Simple of int
  | Float of float

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun m -> raise (Decode_error m)) fmt

(* --- encoding --- *)

let add_head buf major value =
  let add_byte v = Buffer.add_char buf (Char.chr (v land 0xff)) in
  let mt = major lsl 5 in
  if Int64.unsigned_compare value 24L < 0 then add_byte (mt lor Int64.to_int value)
  else if Int64.unsigned_compare value 0x100L < 0 then begin
    add_byte (mt lor 24);
    add_byte (Int64.to_int value)
  end
  else if Int64.unsigned_compare value 0x10000L < 0 then begin
    add_byte (mt lor 25);
    add_byte (Int64.to_int value lsr 8);
    add_byte (Int64.to_int value)
  end
  else if Int64.unsigned_compare value 0x1_0000_0000L < 0 then begin
    add_byte (mt lor 26);
    let v = Int64.to_int value in
    add_byte (v lsr 24);
    add_byte (v lsr 16);
    add_byte (v lsr 8);
    add_byte v
  end
  else begin
    add_byte (mt lor 27);
    for shift = 7 downto 0 do
      add_byte (Int64.to_int (Int64.shift_right_logical value (8 * shift)))
    done
  end

let rec encode_into buf = function
  | Int v ->
      if Int64.compare v 0L >= 0 then add_head buf 0 v
      else add_head buf 1 (Int64.neg (Int64.add v 1L))
  | Bytes s ->
      add_head buf 2 (Int64.of_int (String.length s));
      Buffer.add_string buf s
  | Text s ->
      add_head buf 3 (Int64.of_int (String.length s));
      Buffer.add_string buf s
  | Array items ->
      add_head buf 4 (Int64.of_int (List.length items));
      List.iter (encode_into buf) items
  | Map pairs ->
      add_head buf 5 (Int64.of_int (List.length pairs));
      List.iter
        (fun (k, v) ->
          encode_into buf k;
          encode_into buf v)
        pairs
  | Tag (tag, value) ->
      add_head buf 6 tag;
      encode_into buf value
  | Bool false -> Buffer.add_char buf '\xf4'
  | Bool true -> Buffer.add_char buf '\xf5'
  | Null -> Buffer.add_char buf '\xf6'
  | Undefined -> Buffer.add_char buf '\xf7'
  | Simple v ->
      if v < 0 || v > 255 then invalid_arg "Cbor.encode: simple out of range"
      else if v < 24 then Buffer.add_char buf (Char.chr (0xe0 lor v))
      else begin
        Buffer.add_char buf '\xf8';
        Buffer.add_char buf (Char.chr v)
      end
  | Float f ->
      Buffer.add_char buf '\xfb';
      let bits = Int64.bits_of_float f in
      for shift = 7 downto 0 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * shift)) land 0xff))
      done

let encode value =
  let buf = Buffer.create 64 in
  encode_into buf value;
  Buffer.contents buf

(* Exposed for builders (COSE Sig_structure) that frame raw byte runs
   around existing buffers without going through the tree. *)
let write_head = add_head

(* --- decoding --- *)

type reader = { data : string; mutable pos : int }

let byte r =
  if r.pos >= String.length r.data then decode_error "truncated at %d" r.pos
  else begin
    let c = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

let take r n =
  if r.pos + n > String.length r.data then
    decode_error "truncated: need %d bytes at %d" n r.pos
  else begin
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s
  end

let uint_of_bytes r n =
  let rec loop acc remaining =
    if remaining = 0 then acc
    else loop (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (byte r))) (remaining - 1)
  in
  loop 0L n

(* Returns (major, additional-info, argument, indefinite). *)
let read_head r =
  let initial = byte r in
  let major = initial lsr 5 in
  let info = initial land 0x1f in
  if info < 24 then (major, info, Int64.of_int info, false)
  else
    match info with
    | 24 -> (major, info, Int64.of_int (byte r), false)
    | 25 -> (major, info, uint_of_bytes r 2, false)
    | 26 -> (major, info, uint_of_bytes r 4, false)
    | 27 -> (major, info, uint_of_bytes r 8, false)
    | 31 -> (major, info, 0L, true)
    | _ -> decode_error "reserved additional info %d" info

let length_of r arg =
  if Int64.compare arg 0L < 0 || Int64.compare arg (Int64.of_int Sys.max_string_length) > 0
  then decode_error "length %Ld too large" arg
  else
    let n = Int64.to_int arg in
    if r.pos + n > String.length r.data then decode_error "truncated body"
    else n

let half_to_float h =
  (* IEEE 754 binary16 -> float, RFC 8949 appendix D *)
  let sign = if h land 0x8000 <> 0 then -1.0 else 1.0 in
  let exponent = (h lsr 10) land 0x1f in
  let mantissa = h land 0x3ff in
  let value =
    if exponent = 0 then ldexp (float_of_int mantissa) (-24)
    else if exponent <> 31 then ldexp (float_of_int (mantissa + 1024)) (exponent - 25)
    else if mantissa = 0 then infinity
    else nan
  in
  sign *. value

let rec decode_item r depth =
  if depth > 64 then decode_error "nesting too deep";
  let major, info, arg, indefinite = read_head r in
  match major with
  | 0 ->
      if indefinite then decode_error "indefinite uint";
      Int arg
  | 1 ->
      if indefinite then decode_error "indefinite negative int";
      Int (Int64.sub (Int64.neg arg) 1L)
  | 2 ->
      if indefinite then Bytes (decode_chunks r 2)
      else Bytes (take r (length_of r arg))
  | 3 ->
      if indefinite then Text (decode_chunks r 3)
      else Text (take r (length_of r arg))
  | 4 ->
      if indefinite then Array (decode_indefinite_array r depth)
      else
        Array (List.init (length_of r arg) (fun _ -> decode_item r (depth + 1)))
  | 5 ->
      if indefinite then Map (decode_indefinite_map r depth)
      else
        Map
          (List.init (length_of r arg) (fun _ ->
               let k = decode_item r (depth + 1) in
               let v = decode_item r (depth + 1) in
               (k, v)))
  | 6 -> Tag (arg, decode_item r (depth + 1))
  | 7 -> (
      if indefinite then decode_error "lone break";
      match info with
      | 25 -> Float (half_to_float (Int64.to_int arg))
      | 26 -> Float (Int32.float_of_bits (Int64.to_int32 arg))
      | 27 -> Float (Int64.float_of_bits arg)
      | _ -> (
          match Int64.to_int arg with
          | 20 -> Bool false
          | 21 -> Bool true
          | 22 -> Null
          | 23 -> Undefined
          | v when v < 256 -> Simple v
          | v -> decode_error "bad simple value %d" v))
  | _ -> decode_error "bad major type %d" major

and decode_chunks r major =
  let buf = Buffer.create 32 in
  let rec loop () =
    let initial = byte r in
    if initial = 0xff then Buffer.contents buf
    else begin
      let m = initial lsr 5 in
      let info = initial land 0x1f in
      if m <> major then decode_error "mixed chunk types"
      else begin
        let len =
          if info < 24 then info
          else
            match info with
            | 24 -> byte r
            | 25 -> Int64.to_int (uint_of_bytes r 2)
            | 26 -> Int64.to_int (uint_of_bytes r 4)
            | _ -> decode_error "bad chunk length"
        in
        Buffer.add_string buf (take r len);
        loop ()
      end
    end
  in
  loop ()

and decode_indefinite_array r depth =
  let rec loop acc =
    if r.pos < String.length r.data && Char.code r.data.[r.pos] = 0xff then begin
      r.pos <- r.pos + 1;
      List.rev acc
    end
    else loop (decode_item r (depth + 1) :: acc)
  in
  loop []

and decode_indefinite_map r depth =
  let rec loop acc =
    if r.pos < String.length r.data && Char.code r.data.[r.pos] = 0xff then begin
      r.pos <- r.pos + 1;
      List.rev acc
    end
    else
      let k = decode_item r (depth + 1) in
      let v = decode_item r (depth + 1) in
      loop ((k, v) :: acc)
  in
  loop []

let decode_partial data =
  let r = { data; pos = 0 } in
  let value = decode_item r 0 in
  (value, r.pos)

let decode data =
  let value, consumed = decode_partial data in
  if consumed <> String.length data then
    decode_error "trailing garbage: %d of %d bytes consumed" consumed
      (String.length data)
  else value

(* --- zero-copy view decoder ---

   The tree decoder above copies every byte/text string out of the input
   (String.sub in [take]).  The view decoder walks the same grammar over a
   cursor into the original buffer and returns byte/text strings as
   {!Slice.t} windows — no payload copies; [Slice.to_string] materialises
   lazily.  Structure (arrays/maps) still allocates spine nodes, but a
   view is a strictly cheaper decode.  [view_to_tree] recovers the exact
   tree the old decoder would have produced; the test suite checks the
   two decoders differentially. *)

type view =
  | V_int of int64
  | V_bytes of Slice.t
  | V_text of Slice.t
  | V_array of view list
  | V_map of (view * view) list
  | V_tag of int64 * view
  | V_bool of bool
  | V_null
  | V_undefined
  | V_simple of int
  | V_float of float

type cursor = { cbase : string; mutable cpos : int; climit : int }

let cbyte c =
  if c.cpos >= c.climit then decode_error "truncated at %d" c.cpos
  else begin
    let v = Char.code (String.unsafe_get c.cbase c.cpos) in
    c.cpos <- c.cpos + 1;
    v
  end

let ctake c n =
  if c.cpos + n > c.climit then
    decode_error "truncated: need %d bytes at %d" n c.cpos
  else begin
    let s = Slice.make c.cbase ~off:c.cpos ~len:n in
    c.cpos <- c.cpos + n;
    s
  end

let cuint c n =
  let rec loop acc remaining =
    if remaining = 0 then acc
    else
      loop
        (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (cbyte c)))
        (remaining - 1)
  in
  loop 0L n

let cread_head c =
  let initial = cbyte c in
  let major = initial lsr 5 in
  let info = initial land 0x1f in
  if info < 24 then (major, info, Int64.of_int info, false)
  else
    match info with
    | 24 -> (major, info, Int64.of_int (cbyte c), false)
    | 25 -> (major, info, cuint c 2, false)
    | 26 -> (major, info, cuint c 4, false)
    | 27 -> (major, info, cuint c 8, false)
    | 31 -> (major, info, 0L, true)
    | _ -> decode_error "reserved additional info %d" info

let clength_of c arg =
  if
    Int64.compare arg 0L < 0
    || Int64.compare arg (Int64.of_int Sys.max_string_length) > 0
  then decode_error "length %Ld too large" arg
  else
    let n = Int64.to_int arg in
    if c.cpos + n > c.climit then decode_error "truncated body" else n

let rec decode_view_item c depth =
  if depth > 64 then decode_error "nesting too deep";
  let major, info, arg, indefinite = cread_head c in
  match major with
  | 0 ->
      if indefinite then decode_error "indefinite uint";
      V_int arg
  | 1 ->
      if indefinite then decode_error "indefinite negative int";
      V_int (Int64.sub (Int64.neg arg) 1L)
  | 2 ->
      if indefinite then V_bytes (decode_view_chunks c 2)
      else V_bytes (ctake c (clength_of c arg))
  | 3 ->
      if indefinite then V_text (decode_view_chunks c 3)
      else V_text (ctake c (clength_of c arg))
  | 4 ->
      if indefinite then V_array (decode_view_indefinite_array c depth)
      else
        V_array
          (List.init (clength_of c arg) (fun _ -> decode_view_item c (depth + 1)))
  | 5 ->
      if indefinite then V_map (decode_view_indefinite_map c depth)
      else
        V_map
          (List.init (clength_of c arg) (fun _ ->
               let k = decode_view_item c (depth + 1) in
               let v = decode_view_item c (depth + 1) in
               (k, v)))
  | 6 -> V_tag (arg, decode_view_item c (depth + 1))
  | 7 -> (
      if indefinite then decode_error "lone break";
      match info with
      | 25 -> V_float (half_to_float (Int64.to_int arg))
      | 26 -> V_float (Int32.float_of_bits (Int64.to_int32 arg))
      | 27 -> V_float (Int64.float_of_bits arg)
      | _ -> (
          match Int64.to_int arg with
          | 20 -> V_bool false
          | 21 -> V_bool true
          | 22 -> V_null
          | 23 -> V_undefined
          | v when v < 256 -> V_simple v
          | v -> decode_error "bad simple value %d" v))
  | _ -> decode_error "bad major type %d" major

(* Indefinite-length strings are the one case a view cannot stay
   zero-copy: the chunks are concatenated into an owned string and the
   result is a whole-string slice over it. *)
and decode_view_chunks c major =
  let buf = Buffer.create 32 in
  let rec loop () =
    let initial = cbyte c in
    if initial = 0xff then Slice.of_string (Buffer.contents buf)
    else begin
      let m = initial lsr 5 in
      let info = initial land 0x1f in
      if m <> major then decode_error "mixed chunk types"
      else begin
        let len =
          if info < 24 then info
          else
            match info with
            | 24 -> cbyte c
            | 25 -> Int64.to_int (cuint c 2)
            | 26 -> Int64.to_int (cuint c 4)
            | _ -> decode_error "bad chunk length"
        in
        Slice.add_to_buffer buf (ctake c len);
        loop ()
      end
    end
  in
  loop ()

and decode_view_indefinite_array c depth =
  let rec loop acc =
    if c.cpos < c.climit && Char.code c.cbase.[c.cpos] = 0xff then begin
      c.cpos <- c.cpos + 1;
      List.rev acc
    end
    else loop (decode_view_item c (depth + 1) :: acc)
  in
  loop []

and decode_view_indefinite_map c depth =
  let rec loop acc =
    if c.cpos < c.climit && Char.code c.cbase.[c.cpos] = 0xff then begin
      c.cpos <- c.cpos + 1;
      List.rev acc
    end
    else
      let k = decode_view_item c (depth + 1) in
      let v = decode_view_item c (depth + 1) in
      loop ((k, v) :: acc)
  in
  loop []

let decode_view_slice slice =
  let c =
    {
      cbase = Slice.base slice;
      cpos = Slice.offset slice;
      climit = Slice.offset slice + Slice.length slice;
    }
  in
  let value = decode_view_item c 0 in
  if c.cpos <> c.climit then
    decode_error "trailing garbage: %d of %d bytes consumed"
      (c.cpos - Slice.offset slice)
      (Slice.length slice)
  else value

let decode_view data = decode_view_slice (Slice.of_string data)

let rec view_to_tree = function
  | V_int v -> Int v
  | V_bytes s -> Bytes (Slice.to_string s)
  | V_text s -> Text (Slice.to_string s)
  | V_array items -> Array (List.map view_to_tree items)
  | V_map pairs ->
      Map (List.map (fun (k, v) -> (view_to_tree k, view_to_tree v)) pairs)
  | V_tag (tag, v) -> Tag (tag, view_to_tree v)
  | V_bool b -> Bool b
  | V_null -> Null
  | V_undefined -> Undefined
  | V_simple v -> Simple v
  | V_float f -> Float f

(* --- view accessors (mirror the tree ones, used by COSE/SUIT) --- *)

let vfind_int map key =
  match map with
  | V_map pairs ->
      List.find_map
        (fun (k, v) ->
          match k with
          | V_int k when Int64.equal k key -> Some v
          | _ -> None)
        pairs
  | _ -> None

let vas_int = function V_int v -> Some v | _ -> None
let vas_bytes = function V_bytes s -> Some s | _ -> None
let vas_text = function V_text s -> Some s | _ -> None
let vas_array = function V_array items -> Some items | _ -> None

(* --- accessors used by SUIT/COSE --- *)

let rec pp ppf = function
  | Int v -> Format.fprintf ppf "%Ld" v
  | Bytes s -> Format.fprintf ppf "h'%s'" (String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s)))))
  | Text s -> Format.fprintf ppf "%S" s
  | Array items ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        items
  | Map pairs ->
      let pp_pair ppf (k, v) = Format.fprintf ppf "%a: %a" pp k pp v in
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_pair)
        pairs
  | Tag (tag, v) -> Format.fprintf ppf "%Ld(%a)" tag pp v
  | Bool b -> Format.pp_print_bool ppf b
  | Null -> Format.pp_print_string ppf "null"
  | Undefined -> Format.pp_print_string ppf "undefined"
  | Simple v -> Format.fprintf ppf "simple(%d)" v
  | Float f -> Format.pp_print_float ppf f

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Bytes x, Bytes y | Text x, Text y -> String.equal x y
  | Array x, Array y -> List.length x = List.length y && List.for_all2 equal x y
  | Map x, Map y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> equal k1 k2 && equal v1 v2) x y
  | Tag (t1, v1), Tag (t2, v2) -> Int64.equal t1 t2 && equal v1 v2
  | Bool x, Bool y -> Bool.equal x y
  | Null, Null | Undefined, Undefined -> true
  | Simple x, Simple y -> Int.equal x y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> false

let find_map_entry map key =
  match map with
  | Map pairs ->
      List.find_map (fun (k, v) -> if equal k key then Some v else None) pairs
  | _ -> None

let as_int = function Int v -> Some v | _ -> None
let as_bytes = function Bytes s -> Some s | _ -> None
let as_text = function Text s -> Some s | _ -> None
let as_array = function Array items -> Some items | _ -> None
