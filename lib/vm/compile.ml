(* Closure-threaded execution tier: direct-threaded code for OCaml.

   [compile] translates the pre-decoded [Insn.kind array] into an array
   of mutually tail-calling closures, one per instruction slot — the
   decode/dispatch work the interpreter repeats on every step (fetch the
   instruction view, switch on its constructor, fetch operand fields) is
   done exactly once, at load time.  Each closure is specialized on its
   static operands: register indices become constant byte offsets into
   an unboxed register file, immediates are pre-sign-extended into
   captured [int64] constants, branch targets become captured indices
   into the code array, helper ids are resolved against the table once.

   Isolation semantics are unchanged.  In [Checked] mode every memory
   access still resolves through the allow-list and both finite-execution
   budgets are enforced, bit-for-bit like [Interp.exec_checked]
   (including fault identity and the stats visible at the fault point).
   [Proven] mode consumes the static analyzer's per-pc facts exactly like
   [Interp.exec_trimmed]: proven stack accesses compile to direct [Bytes]
   reads at one-subtraction offsets, budgets cannot fire (the analyzer
   only grants proofs to DAGs inside both static budgets) so their
   compares are compiled out, and a violated proof (analyzer bug) is
   contained as a memory fault rather than crashing the host.

   The register file is a flat 88-byte buffer accessed through the
   unboxed bytes-load/store primitives, so straight-line ALU chains run
   without minor-heap allocation — the property the engine's warm pool
   relies on.  Stores additionally maintain a dirty high-water mark over
   the stack so [reset] zeroes only the bytes the previous run touched.

   A superinstruction fusion pass (on for proof-bearing instances, or on
   request) merges the hot pairs the workloads emit — ALU-imm chains,
   compare+jump, load+ALU, and the spill/reload idiom — into single
   closures, eliminating the indirect dispatch between the two halves.
   [lddw] absorption is inherent to this tier: the pair becomes one
   closure holding the reassembled 64-bit constant. *)

open Femto_ebpf
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* Same process-wide VM metric names as [Interp]: the registry hands back
   the same handles, so "vm.runs" etc. aggregate across tiers. *)
let m_runs = Obs.counter "vm.runs"
let m_faults = Obs.counter "vm.faults"
let m_insns = Obs.counter "vm.insns"
let m_branches = Obs.counter "vm.branches"
let m_helper_calls = Obs.counter "vm.helper_calls"
let m_cycles = Obs.counter "vm.cycles"
let m_run_ns = Obs.histogram "vm.run_ns"
let m_compile_ns = Obs.histogram "vm.compile_ns"
let m_fused = Obs.counter "vm.fused_insns"
let m_ir_elided = Obs.counter "vm.ir_checks_elided"

(* Unboxed native-endian 64-bit access into the register file and the
   stack.  The host is assumed little endian, like the interpreter's
   direct stack accessors; all register-file access goes through these
   two primitives so the representation is internally consistent. *)
external get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Everything a run mutates lives in [state], which is passed to every
   generated closure as a parameter: the closures themselves are pure
   functions of the bytecode and can be shared between any number of
   instances (the container image/instance split relies on this — see
   [instantiate]).  That includes the run statistics and the per-site
   region inline caches, which earlier revisions captured at compile
   time and would have leaked between instances. *)
type state = {
  rf : bytes; (* 11 registers x 8 bytes *)
  stack : bytes; (* shared with the paired Interp instance *)
  mem : Mem.t;
  stats : Interp.stats; (* shared with the paired Interp instance *)
  snapshot : Region.t array; (* this instance's allow-list at creation *)
  cache_ok : bool; (* snapshot pairwise disjoint: inline caches sound *)
  rcache : Region.t option array; (* per-site region inline caches *)
  mutable dirty_lo : int; (* dirty stack window [dirty_lo, dirty_hi) *)
  mutable dirty_hi : int;
}

(* The immutable compiled artifact: generated closures plus compile-time
   metadata.  Shared (never written after compilation) between every
   instance spawned from the same image. *)
type code = {
  entry : state -> unit; (* threaded: code.(0); IR: superblock trampoline *)
  code : (state -> unit) array;
      (* per-insn threaded code; for the IR tier this is the exact-budget
         fallback path (empty when budgets are compiled out) *)
  stack_top : int64; (* pre-boxed r10 reset value *)
  stack_size : int;
  fused : int; (* superinstructions installed by the fusion pass *)
  proven : int; (* accesses compiled against analyzer proofs *)
  ir_blocks : int; (* superblocks compiled by the IR backend (0 = threaded) *)
  elided : int; (* IR memory checks elided against analyzer proofs *)
  hoisted : int; (* IR allow-list scans behind a region inline cache *)
  cache_sites : int; (* inline-cache slots a [state] must provide *)
  compile_ns : float;
}

type t = { sh : code; st : state; mutable runs : int }

type mode = Checked | Proven of bool array

exception Vm_fault of Fault.t

(* Pre-allocated containment fault for a violated analyzer proof — the
   same sentinel [Interp.exec_trimmed] reports. *)
let proof_trap =
  Vm_fault (Fault.Memory_access { pc = 0; addr = 0L; size = 0; write = false })

let[@inline always] reg st i = get64 st.rf (i lsl 3)
let[@inline always] set_reg st i v = set64 st.rf (i lsl 3) v

(* Only regions that were in the instance's allow-list snapshot may be
   inline-cached: regions appended later scan *after* every snapshot
   region in [Mem.find], so a cached hit can never shadow them. *)
let in_snapshot st r =
  let ok = ref false in
  Array.iter (fun r' -> if r' == r then ok := true) st.snapshot;
  !ok

(* One 64-bit ALU step over the non-faulting operation subset; fused
   bodies switch on the captured (per-closure constant) operation tag. *)
let[@inline always] alu_step (op : Opcode.alu_op) (d : int64) (s : int64) =
  match op with
  | Opcode.Add -> Int64.add d s
  | Opcode.Sub -> Int64.sub d s
  | Opcode.Mul -> Int64.mul d s
  | Opcode.Or -> Int64.logor d s
  | Opcode.And -> Int64.logand d s
  | Opcode.Xor -> Int64.logxor d s
  | Opcode.Lsh -> Int64.shift_left d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Rsh -> Int64.shift_right_logical d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Arsh -> Int64.shift_right d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Mov -> s
  | Opcode.Neg -> Int64.neg d
  | Opcode.Div | Opcode.Mod -> assert false (* excluded by [simple_alu] *)

let simple_alu (op : Opcode.alu_op) =
  match op with Opcode.Div | Opcode.Mod -> false | _ -> true

(* Little-endian direct stack access, identical to the interpreter's
   trimmed-loop accessors. *)
let load_direct data o nbytes =
  match nbytes with
  | 1 -> Int64.of_int (Bytes.get_uint8 data o)
  | 2 -> Int64.of_int (Bytes.get_uint16_le data o)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le data o)) 0xFFFF_FFFFL
  | _ -> Bytes.get_int64_le data o

let store_direct data o nbytes v =
  match nbytes with
  | 1 -> Bytes.set_uint8 data o (Int64.to_int v land 0xff)
  | 2 -> Bytes.set_uint16_le data o (Int64.to_int v land 0xffff)
  | 4 -> Bytes.set_int32_le data o (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le data o v

(* [build_code] is the threaded-code generator shared by [compile] (which
   runs it as the whole program) and [compile_ir] (which keeps it as the
   bit-exact per-instruction fallback for superblocks entered with too
   little budget headroom for batched accounting). *)
let build_code ~fuse ~mode interp =
  let program = Interp.program interp in
  let config = Interp.config interp in
  let helpers = Interp.helpers interp in
  let cost = Interp.cycle_cost interp in
  let insns = Program.insns program in
  let kinds = Array.map Insn.kind insns in
  let len = Array.length kinds in
  let stack_size = config.Config.stack_size in
  let stack_vaddr = config.Config.stack_vaddr in
  let is_proven pc =
    match mode with
    | Checked -> false
    | Proven p -> pc < Array.length p && Array.unsafe_get p pc
  in
  (* In [Proven] mode the analyzer guarantees a DAG within both static
     budgets, so neither limit can be reached: compile the compares to
     always-false against [max_int], mirroring the trimmed loop. *)
  let ilimit, blimit =
    match mode with
    | Checked -> (Config.dynamic_instruction_limit config, config.Config.max_branches)
    | Proven _ -> (max_int, max_int)
  in
  (* The code array has one closure per slot, a fall-off trap at index
     [len], and one trap per out-of-range branch target (unreachable in
     verified programs, kept for exact decoded-tier fault parity). *)
  let trap_targets = ref [] in
  Array.iteri
    (fun pc k ->
      match k with
      | Insn.Ja | Insn.Jcond _ ->
          let target = pc + 1 + (Array.unsafe_get insns pc).Insn.offset in
          if (target < 0 || target > len) && not (List.mem target !trap_targets)
          then trap_targets := target :: !trap_targets
      | _ -> ())
    kinds;
  let traps = List.mapi (fun i target -> (target, len + 1 + i)) !trap_targets in
  let stub (_ : state) = () in
  let code = Array.make (len + 1 + List.length traps) stub in
  code.(len) <- (fun _ -> raise (Vm_fault (Fault.Fall_off_end { pc = len })));
  List.iter
    (fun (target, slot) ->
      code.(slot) <-
        (fun _ -> raise (Vm_fault (Fault.Fall_off_end { pc = target }))))
    traps;
  let resolve target =
    if target >= 0 && target <= len then target else List.assoc target traps
  in
  let[@inline] continue st i = (Array.unsafe_get code i) st in
  (* Per-original-instruction bookkeeping, in the decoded tier's exact
     order: count, budget-check, charge the cycle model.  Stats are read
     through [st] so the generated closures stay instance-agnostic. *)
  let[@inline] acct st c =
    let stats = st.stats in
    let n = stats.Interp.insns_executed + 1 in
    stats.Interp.insns_executed <- n;
    if n > ilimit then
      raise (Vm_fault (Fault.Instruction_budget_exhausted { executed = n }));
    stats.Interp.cycles <- stats.Interp.cycles + c
  in
  let[@inline] take_branch st =
    let stats = st.stats in
    let b = stats.Interp.branches_taken + 1 in
    stats.Interp.branches_taken <- b;
    if b > blimit then
      raise (Vm_fault (Fault.Branch_budget_exhausted { taken = b }))
  in
  let[@inline] mark_dirty st lo hi =
    if lo < st.dirty_lo then st.dirty_lo <- lo;
    if hi > st.dirty_hi then st.dirty_hi <- hi
  in
  (* Post-hoc watermark maintenance for allow-list stores that landed in
     the stack region (the stack is the first region in the map, so an
     accepted access at a stack address is a stack access). *)
  let mark_checked_store st addr nbytes =
    let o = Int64.to_int (Int64.sub addr stack_vaddr) in
    if o >= 0 && o < stack_size then
      mark_dirty st (max 0 o) (min stack_size (o + nbytes))
  in
  (* --- specialized single-instruction generators --- *)
  let gen_alu64_imm ~pc ~c ~dst ~v ~next (op : Opcode.alu_op) =
    match op with
    | Opcode.Add ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.add (reg st dst) v);
          continue st next
    | Opcode.Sub ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.sub (reg st dst) v);
          continue st next
    | Opcode.Mul ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.mul (reg st dst) v);
          continue st next
    | Opcode.Div ->
        if Int64.equal v 0L then fun st ->
          acct st c;
          raise (Vm_fault (Fault.Division_by_zero { pc }))
        else
          fun st ->
            acct st c;
            set_reg st dst (Int64.unsigned_div (reg st dst) v);
            continue st next
    | Opcode.Mod ->
        if Int64.equal v 0L then fun st ->
          acct st c;
          raise (Vm_fault (Fault.Division_by_zero { pc }))
        else
          fun st ->
            acct st c;
            set_reg st dst (Int64.unsigned_rem (reg st dst) v);
            continue st next
    | Opcode.Or ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logor (reg st dst) v);
          continue st next
    | Opcode.And ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logand (reg st dst) v);
          continue st next
    | Opcode.Xor ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logxor (reg st dst) v);
          continue st next
    | Opcode.Lsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct st c;
          set_reg st dst (Int64.shift_left (reg st dst) sh);
          continue st next
    | Opcode.Rsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct st c;
          set_reg st dst (Int64.shift_right_logical (reg st dst) sh);
          continue st next
    | Opcode.Arsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct st c;
          set_reg st dst (Int64.shift_right (reg st dst) sh);
          continue st next
    | Opcode.Neg ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.neg (reg st dst));
          continue st next
    | Opcode.Mov ->
        fun st ->
          acct st c;
          set_reg st dst v;
          continue st next
  in
  let gen_alu64_reg ~pc ~c ~dst ~src ~next (op : Opcode.alu_op) =
    match op with
    | Opcode.Add ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.add (reg st dst) (reg st src));
          continue st next
    | Opcode.Sub ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.sub (reg st dst) (reg st src));
          continue st next
    | Opcode.Mul ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.mul (reg st dst) (reg st src));
          continue st next
    | Opcode.Div ->
        fun st ->
          acct st c;
          let s = reg st src in
          if Int64.equal s 0L then
            raise (Vm_fault (Fault.Division_by_zero { pc }));
          set_reg st dst (Int64.unsigned_div (reg st dst) s);
          continue st next
    | Opcode.Mod ->
        fun st ->
          acct st c;
          let s = reg st src in
          if Int64.equal s 0L then
            raise (Vm_fault (Fault.Division_by_zero { pc }));
          set_reg st dst (Int64.unsigned_rem (reg st dst) s);
          continue st next
    | Opcode.Or ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logor (reg st dst) (reg st src));
          continue st next
    | Opcode.And ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logand (reg st dst) (reg st src));
          continue st next
    | Opcode.Xor ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.logxor (reg st dst) (reg st src));
          continue st next
    | Opcode.Lsh ->
        fun st ->
          acct st c;
          set_reg st dst
            (Int64.shift_left (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Rsh ->
        fun st ->
          acct st c;
          set_reg st dst
            (Int64.shift_right_logical (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Arsh ->
        fun st ->
          acct st c;
          set_reg st dst
            (Int64.shift_right (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Neg ->
        fun st ->
          acct st c;
          set_reg st dst (Int64.neg (reg st dst));
          continue st next
    | Opcode.Mov ->
        fun st ->
          acct st c;
          set_reg st dst (reg st src);
          continue st next
  in
  let gen_solo pc =
    let insn = Array.unsafe_get insns pc in
    let kind = Array.unsafe_get kinds pc in
    let dst = insn.Insn.dst and src = insn.Insn.src in
    let off64 = Int64.of_int insn.Insn.offset in
    let imm = insn.Insn.imm in
    let c = cost kind in
    let next = pc + 1 in
    (* The verifier guarantees register fields <= 10; these compile-time
       traps keep even unverified garbage contained, with the decoded
       tier's fault (raised before any accounting, like its check). *)
    if dst > 10 then fun _ ->
      raise (Vm_fault (Fault.Invalid_register { pc; reg = dst }))
    else if src > 10 then fun _ ->
      raise (Vm_fault (Fault.Invalid_register { pc; reg = src }))
    else
      match kind with
      | Insn.Alu (true, op, Opcode.Src_imm) ->
          gen_alu64_imm ~pc ~c ~dst ~v:(Int64.of_int32 imm) ~next op
      | Insn.Alu (true, op, Opcode.Src_reg) ->
          gen_alu64_reg ~pc ~c ~dst ~src ~next op
      | Insn.Alu (false, op, Opcode.Src_imm) ->
          (* 32-bit ALU is rare in our workloads: route through the
             shared semantics for exact parity with the other engines. *)
          let v = Int64.of_int32 imm in
          fun st ->
            acct st c;
            (match Interp.alu32 pc op (reg st dst) v with
            | Ok r -> set_reg st dst r
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Alu (false, op, Opcode.Src_reg) ->
          fun st ->
            acct st c;
            (match Interp.alu32 pc op (reg st dst) (reg st src) with
            | Ok r -> set_reg st dst r
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Load size ->
          let nbytes = Opcode.size_bytes size in
          if is_proven pc then
            if size = Opcode.DW then fun st ->
              acct st c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st src) off64) stack_vaddr)
              in
              if o < 0 || o > stack_size - 8 then raise proof_trap;
              set_reg st dst (get64 st.stack o);
              continue st next
            else fun st ->
              acct st c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st src) off64) stack_vaddr)
              in
              if o < 0 || o + nbytes > stack_size then raise proof_trap;
              set_reg st dst (load_direct st.stack o nbytes);
              continue st next
          else fun st ->
            acct st c;
            let addr = Int64.add (reg st src) off64 in
            (match Mem.load st.mem ~addr ~size:nbytes with
            | Ok v -> set_reg st dst v
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = false })));
            continue st next
      | Insn.Store_imm size ->
          let nbytes = Opcode.size_bytes size in
          let v = Int64.of_int32 imm in
          if is_proven pc then fun st ->
            acct st c;
            let o =
              Int64.to_int (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
            in
            if o < 0 || o + nbytes > stack_size then raise proof_trap;
            mark_dirty st o (o + nbytes);
            store_direct st.stack o nbytes v;
            continue st next
          else fun st ->
            acct st c;
            let addr = Int64.add (reg st dst) off64 in
            (match Mem.store st.mem ~addr ~size:nbytes v with
            | Ok () -> mark_checked_store st addr nbytes
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = true })));
            continue st next
      | Insn.Store_reg size ->
          let nbytes = Opcode.size_bytes size in
          if is_proven pc then
            if size = Opcode.DW then fun st ->
              acct st c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
              in
              if o < 0 || o > stack_size - 8 then raise proof_trap;
              if o < st.dirty_lo then st.dirty_lo <- o;
              if o + 8 > st.dirty_hi then st.dirty_hi <- o + 8;
              set64 st.stack o (reg st src);
              continue st next
            else fun st ->
              acct st c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
              in
              if o < 0 || o + nbytes > stack_size then raise proof_trap;
              mark_dirty st o (o + nbytes);
              store_direct st.stack o nbytes (reg st src);
              continue st next
          else fun st ->
            acct st c;
            let addr = Int64.add (reg st dst) off64 in
            (match Mem.store st.mem ~addr ~size:nbytes (reg st src) with
            | Ok () -> mark_checked_store st addr nbytes
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = true })));
            continue st next
      | Insn.Lddw_head ->
          (* lddw absorption: the pair collapses into one closure holding
             the reassembled constant; the tail slot keeps its own trap
             closure in case a (necessarily unverified) jump lands on it. *)
          if pc + 1 >= len then fun st ->
            acct st c;
            raise (Vm_fault (Fault.Truncated_lddw { pc }))
          else
            let tail = Array.unsafe_get insns (pc + 1) in
            let v = Insn.lddw_imm ~head:insn ~tail in
            let next2 = pc + 2 in
            fun st ->
              acct st c;
              set_reg st dst v;
              continue st next2
      | Insn.Lddw_tail ->
          fun st ->
            acct st c;
            raise (Vm_fault (Fault.Invalid_opcode { pc; opcode = 0 }))
      | Insn.End endianness ->
          fun st ->
            acct st c;
            (match Interp.byte_swap pc endianness imm (reg st dst) with
            | Ok v -> set_reg st dst v
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Ja ->
          let target = resolve (pc + 1 + insn.Insn.offset) in
          fun st ->
            acct st c;
            take_branch st;
            continue st target
      | Insn.Jcond (is64, cond, source) -> (
          let target = resolve (pc + 1 + insn.Insn.offset) in
          match source with
          | Opcode.Src_imm ->
              let v = Int64.of_int32 imm in
              fun st ->
                acct st c;
                if Interp.condition cond is64 (reg st dst) v then begin
                  take_branch st;
                  continue st target
                end
                else continue st next
          | Opcode.Src_reg ->
              fun st ->
                acct st c;
                if Interp.condition cond is64 (reg st dst) (reg st src) then begin
                  take_branch st;
                  continue st target
                end
                else continue st next)
      | Insn.Call -> (
          let id = Int32.to_int imm in
          match Helper.find helpers id with
          | None ->
              fun st ->
                acct st c;
                raise (Vm_fault (Fault.Unknown_helper { pc; id }))
          | Some entry ->
              let name = entry.Helper.name in
              let hcost = entry.Helper.cost_cycles in
              let fn = entry.Helper.fn in
              fun st ->
                acct st c;
                st.stats.Interp.helper_calls <- st.stats.Interp.helper_calls + 1;
                if Obs.tracing () then
                  Obs.event (fun () -> Otrace.Helper_call { id; name });
                st.stats.Interp.cycles <- st.stats.Interp.cycles + hcost;
                let a =
                  {
                    Helper.a1 = reg st 1;
                    a2 = reg st 2;
                    a3 = reg st 3;
                    a4 = reg st 4;
                    a5 = reg st 5;
                  }
                in
                (match fn st.mem a with
                | Ok r0 -> set_reg st 0 r0
                | Error message ->
                    raise (Vm_fault (Fault.Helper_error { pc; id; message })));
                (* The helper may have written anywhere its allow-list
                   permits, including the stack: conservatively mark the
                   whole frame dirty. *)
                st.dirty_lo <- 0;
                st.dirty_hi <- stack_size;
                continue st next)
      | Insn.Exit -> fun st -> acct st c
      | Insn.Invalid opcode ->
          fun st ->
            acct st c;
            raise (Vm_fault (Fault.Invalid_opcode { pc; opcode }))
  in
  for pc = len - 1 downto 0 do
    code.(pc) <- gen_solo pc
  done;
  (* --- superinstruction fusion ---

     A fused closure at [pc] performs both instructions and continues at
     [pc + 2]; the solo closure at [pc + 1] stays in place, so a branch
     landing between the pair still executes correctly.  Bookkeeping is
     performed per original instruction, in order, so stats and fault
     identity stay bit-identical to the unfused tier. *)
  let fused = ref 0 in
  if fuse then
    for pc = 0 to len - 2 do
      let i1 = Array.unsafe_get insns pc in
      let i2 = Array.unsafe_get insns (pc + 1) in
      let k1 = Array.unsafe_get kinds pc in
      let k2 = Array.unsafe_get kinds (pc + 1) in
      if i1.Insn.dst <= 10 && i1.Insn.src <= 10 && i2.Insn.dst <= 10
         && i2.Insn.src <= 10
      then begin
        let c1 = cost k1 and c2 = cost k2 in
        let nn = pc + 2 in
        match (k1, k2) with
        (* spill/reload: a proven store immediately re-read through the
           same base register, offset and width becomes one bounds check,
           one store and a register move. *)
        | Insn.Store_reg Opcode.DW, Insn.Load Opcode.DW
          when is_proven pc
               && is_proven (pc + 1)
               && i2.Insn.src = i1.Insn.dst
               && i2.Insn.offset = i1.Insn.offset ->
            let base = i1.Insn.dst
            and v_src = i1.Insn.src
            and l_dst = i2.Insn.dst in
            let off64 = Int64.of_int i1.Insn.offset in
            code.(pc) <-
              (fun st ->
                acct st c1;
                let o =
                  Int64.to_int
                    (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
                in
                if o < 0 || o > stack_size - 8 then raise proof_trap;
                if o < st.dirty_lo then st.dirty_lo <- o;
                if o + 8 > st.dirty_hi then st.dirty_hi <- o + 8;
                let v = reg st v_src in
                set64 st.stack o v;
                acct st c2;
                set_reg st l_dst v;
                continue st nn);
            incr fused
        (* proven load feeding a 64-bit ALU op through its destination *)
        | Insn.Load Opcode.DW, Insn.Alu (true, op2, Opcode.Src_reg)
          when is_proven pc && simple_alu op2 && i2.Insn.src = i1.Insn.dst ->
            let l_src = i1.Insn.src and l_dst = i1.Insn.dst in
            let d2 = i2.Insn.dst in
            let off64 = Int64.of_int i1.Insn.offset in
            code.(pc) <-
              (fun st ->
                acct st c1;
                let o =
                  Int64.to_int
                    (Int64.sub (Int64.add (reg st l_src) off64) stack_vaddr)
                in
                if o < 0 || o > stack_size - 8 then raise proof_trap;
                let v = get64 st.stack o in
                set_reg st l_dst v;
                acct st c2;
                set_reg st d2 (alu_step op2 (reg st d2) v);
                continue st nn);
            incr fused
        (* compare-and-jump: ALU-imm followed by a conditional jump *)
        | Insn.Alu (true, op1, Opcode.Src_imm), Insn.Jcond (is64, cond, source)
          when simple_alu op1 ->
            let d1 = i1.Insn.dst in
            let v1 = Int64.of_int32 i1.Insn.imm in
            let d2 = i2.Insn.dst and s2 = i2.Insn.src in
            let target = resolve (pc + 2 + i2.Insn.offset) in
            (match source with
            | Opcode.Src_imm ->
                let v2 = Int64.of_int32 i2.Insn.imm in
                code.(pc) <-
                  (fun st ->
                    acct st c1;
                    set_reg st d1 (alu_step op1 (reg st d1) v1);
                    acct st c2;
                    if Interp.condition cond is64 (reg st d2) v2 then begin
                      take_branch st;
                      continue st target
                    end
                    else continue st nn)
            | Opcode.Src_reg ->
                code.(pc) <-
                  (fun st ->
                    acct st c1;
                    set_reg st d1 (alu_step op1 (reg st d1) v1);
                    acct st c2;
                    if Interp.condition cond is64 (reg st d2) (reg st s2)
                    then begin
                      take_branch st;
                      continue st target
                    end
                    else continue st nn));
            incr fused
        (* ALU-imm chain *)
        | Insn.Alu (true, op1, Opcode.Src_imm), Insn.Alu (true, op2, Opcode.Src_imm)
          when simple_alu op1 && simple_alu op2 ->
            let d1 = i1.Insn.dst and d2 = i2.Insn.dst in
            let v1 = Int64.of_int32 i1.Insn.imm in
            let v2 = Int64.of_int32 i2.Insn.imm in
            code.(pc) <-
              (fun st ->
                acct st c1;
                set_reg st d1 (alu_step op1 (reg st d1) v1);
                acct st c2;
                set_reg st d2 (alu_step op2 (reg st d2) v2);
                continue st nn);
            incr fused
        | _ -> ()
      end
    done;
  (code, !fused)

let proven_of_mode mode =
  match mode with
  | Checked -> 0
  | Proven p -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 p

(* Pairwise disjointness of an instance's allow-list is what makes a
   per-site region inline cache sound: with disjoint regions, [Mem.find]
   first-match is determined by containment alone, and regions appended
   later scan *after* every cached candidate, so a hit on a snapshot
   region can never shadow a better match.  Checked per instance (at
   [instantiate] time), since different instances of the same code can
   carry different region layouts. *)
let regions_disjoint (rs : Region.t array) =
  let n = Array.length rs in
  let span (r : Region.t) =
    let lo = r.Region.vaddr in
    let hi = Int64.add lo (Int64.of_int (Region.length r)) in
    (lo, hi)
  in
  let wraps (r : Region.t) =
    let lo, hi = span r in
    Region.length r > 0 && Int64.unsigned_compare hi lo <= 0
  in
  let overlap a b =
    let a_lo, a_hi = span a and b_lo, b_hi = span b in
    Region.length a > 0 && Region.length b > 0
    && Int64.unsigned_compare a_lo b_hi < 0
    && Int64.unsigned_compare b_lo a_hi < 0
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    if wraps rs.(i) then ok := false;
    for j = i + 1 to n - 1 do
      if overlap rs.(i) rs.(j) then ok := false
    done
  done;
  !ok

(* Private run state for one instance over [cache_sites] inline-cache
   slots.  Everything else the closures touch is reached through this
   record, so building it is the entire per-instance cost of the
   compiled tier. *)
let fresh_state ~cache_sites interp =
  let mem = Interp.mem interp in
  let snapshot = Mem.raw_regions mem in
  {
    rf = Bytes.make 88 '\000';
    stack = Interp.stack_data interp;
    mem;
    stats = Interp.stats interp;
    snapshot;
    cache_ok = cache_sites > 0 && regions_disjoint snapshot;
    rcache = Array.make cache_sites None;
    dirty_lo = max_int;
    dirty_hi = 0;
  }

(* Bind shared compiled code to a fresh instance: no verification,
   analysis or compilation happens here — [m_compile_ns] is deliberately
   not observed, which the image-cache tests rely on. *)
let instantiate sh interp =
  { sh; st = fresh_state ~cache_sites:sh.cache_sites interp; runs = 0 }

let shared t = t.sh
let cache_sites sh = sh.cache_sites

let compile ?(fuse = false) ~mode interp =
  let t0 = Obs.now_ns () in
  let code, fused = build_code ~fuse ~mode interp in
  let config = Interp.config interp in
  let compile_ns = Obs.now_ns () -. t0 in
  if Obs.enabled () then begin
    Ometrics.observe m_compile_ns compile_ns;
    Ometrics.add m_fused fused
  end;
  let sh =
    {
      entry = (fun st -> (Array.unsafe_get code 0) st);
      code;
      stack_top =
        Int64.add config.Config.stack_vaddr
          (Int64.of_int config.Config.stack_size);
      stack_size = config.Config.stack_size;
      fused;
      proven = proven_of_mode mode;
      ir_blocks = 0;
      elided = 0;
      hoisted = 0;
      cache_sites = 0;
      compile_ns;
    }
  in
  instantiate sh interp

(* ------------------------------------------------------------------ *)
(* Superblock (IR) backend.                                           *)

(* Fault-capable IR steps: where batched accounting must be applied
   before the operation body runs, exactly as the decoded tier would have
   accounted every instruction up to and including this one. *)
let step_flushes (op : Ir.op) =
  match op with
  | Ir.Alu { op = Opcode.Div | Opcode.Mod; src = Ir.Reg _; _ } -> true
  | Ir.Load { elide; _ } | Ir.Store { elide; _ } -> not elide
  | Ir.Call _ | Ir.Jcond _ | Ir.Trap _ | Ir.Trap_pre _ -> true
  | Ir.Alu _ | Ir.Movk _ | Ir.Swap _ | Ir.Nop -> false

(* [compile_ir] emits one closure per superblock: a trampoline threads
   block ids ([-1] = stop) so straight-line runs execute with no
   per-instruction dispatch, no per-instruction budget compares (bulk
   accounting at fault-capable steps and exits), proof-elided stack
   accesses, and region-inline-cached allow-list accesses.

   Budget exactness: in [Checked] mode each block entry checks that the
   whole block fits the remaining instruction and branch budgets; if not,
   control drops into the per-instruction threaded code at the block's
   head pc, which reproduces the decoded tier's budget faults (payload
   and partial stats) bit-for-bit. *)
let compile_ir ~mode ~(ir : Ir.program) interp =
  let t0 = Obs.now_ns () in
  let config = Interp.config interp in
  let helpers = Interp.helpers interp in
  let stack_size = config.Config.stack_size in
  let stack_vaddr = config.Config.stack_vaddr in
  let checked = match mode with Checked -> true | Proven _ -> false in
  let ilimit = Config.dynamic_instruction_limit config in
  let blimit = config.Config.max_branches in
  let fb_code =
    if checked then fst (build_code ~fuse:false ~mode interp) else [||]
  in
  (* Region inline caches live in per-instance [state] slots: each hoisted
     site is assigned a slot index at compile time, and every instance
     brings its own slot array, snapshot and disjointness verdict — so
     code shared between instances with different region layouts can never
     leak a cached region from one instance into another. *)
  let n_cache_sites = ref 0 in
  let fresh_slot () =
    let s = !n_cache_sites in
    incr n_cache_sites;
    s
  in
  let[@inline] bulk_acct st dn dc =
    let stats = st.stats in
    stats.Interp.insns_executed <- stats.Interp.insns_executed + dn;
    stats.Interp.cycles <- stats.Interp.cycles + dc
  in
  let[@inline] mark_dirty st lo hi =
    if lo < st.dirty_lo then st.dirty_lo <- lo;
    if hi > st.dirty_hi then st.dirty_hi <- hi
  in
  let mark_checked_store st addr nbytes =
    let o = Int64.to_int (Int64.sub addr stack_vaddr) in
    if o >= 0 && o < stack_size then
      mark_dirty st (max 0 o) (min stack_size (o + nbytes))
  in
  (* Non-faulting 64-bit ALU, no accounting (batched elsewhere). *)
  let gen_alu64 ~dst ~(src : Ir.operand) (op : Opcode.alu_op)
      (k : state -> int) =
    match src with
    | Ir.Imm v -> (
        match op with
        | Opcode.Add -> fun st -> set_reg st dst (Int64.add (reg st dst) v); k st
        | Opcode.Sub -> fun st -> set_reg st dst (Int64.sub (reg st dst) v); k st
        | Opcode.Mul -> fun st -> set_reg st dst (Int64.mul (reg st dst) v); k st
        | Opcode.Div ->
            (* zero divisors become [Trap] at lift time *)
            fun st -> set_reg st dst (Int64.unsigned_div (reg st dst) v); k st
        | Opcode.Mod ->
            fun st -> set_reg st dst (Int64.unsigned_rem (reg st dst) v); k st
        | Opcode.Or -> fun st -> set_reg st dst (Int64.logor (reg st dst) v); k st
        | Opcode.And -> fun st -> set_reg st dst (Int64.logand (reg st dst) v); k st
        | Opcode.Xor -> fun st -> set_reg st dst (Int64.logxor (reg st dst) v); k st
        | Opcode.Lsh ->
            let sh = Int64.to_int (Int64.logand v 63L) in
            fun st -> set_reg st dst (Int64.shift_left (reg st dst) sh); k st
        | Opcode.Rsh ->
            let sh = Int64.to_int (Int64.logand v 63L) in
            fun st ->
              set_reg st dst (Int64.shift_right_logical (reg st dst) sh);
              k st
        | Opcode.Arsh ->
            let sh = Int64.to_int (Int64.logand v 63L) in
            fun st -> set_reg st dst (Int64.shift_right (reg st dst) sh); k st
        | Opcode.Neg -> fun st -> set_reg st dst (Int64.neg (reg st dst)); k st
        | Opcode.Mov -> fun st -> set_reg st dst v; k st)
    | Ir.Reg src -> (
        match op with
        | Opcode.Add ->
            fun st -> set_reg st dst (Int64.add (reg st dst) (reg st src)); k st
        | Opcode.Sub ->
            fun st -> set_reg st dst (Int64.sub (reg st dst) (reg st src)); k st
        | Opcode.Mul ->
            fun st -> set_reg st dst (Int64.mul (reg st dst) (reg st src)); k st
        | Opcode.Div | Opcode.Mod ->
            assert false (* fault-capable: handled by the flush generator *)
        | Opcode.Or ->
            fun st -> set_reg st dst (Int64.logor (reg st dst) (reg st src)); k st
        | Opcode.And ->
            fun st ->
              set_reg st dst (Int64.logand (reg st dst) (reg st src));
              k st
        | Opcode.Xor ->
            fun st ->
              set_reg st dst (Int64.logxor (reg st dst) (reg st src));
              k st
        | Opcode.Lsh ->
            fun st ->
              set_reg st dst
                (Int64.shift_left (reg st dst)
                   (Int64.to_int (Int64.logand (reg st src) 63L)));
              k st
        | Opcode.Rsh ->
            fun st ->
              set_reg st dst
                (Int64.shift_right_logical (reg st dst)
                   (Int64.to_int (Int64.logand (reg st src) 63L)));
              k st
        | Opcode.Arsh ->
            fun st ->
              set_reg st dst
                (Int64.shift_right (reg st dst)
                   (Int64.to_int (Int64.logand (reg st src) 63L)));
              k st
        | Opcode.Neg -> fun st -> set_reg st dst (Int64.neg (reg st dst)); k st
        | Opcode.Mov -> fun st -> set_reg st dst (reg st src); k st)
  in
  (* One IR step -> one closure in the block body; [dn]/[dc] is the
     batched accounting this step must apply first (0 for non-flush
     steps, which were folded into a later flush point). *)
  let gen_step (s : Ir.step) dn dc (k : state -> int) : state -> int =
    let pc = s.Ir.pc in
    match s.Ir.op with
    | Ir.Nop -> k
    | Ir.Movk { dst; v } ->
        fun st ->
          set_reg st dst v;
          k st
    | Ir.Alu
        { op = (Opcode.Div | Opcode.Mod) as op; is64; dst; src = Ir.Reg src }
      ->
        if is64 then
          let div = op = Opcode.Div in
          fun st ->
            bulk_acct st dn dc;
            let sv = reg st src in
            if Int64.equal sv 0L then
              raise (Vm_fault (Fault.Division_by_zero { pc }));
            set_reg st dst
              (if div then Int64.unsigned_div (reg st dst) sv
               else Int64.unsigned_rem (reg st dst) sv);
            k st
        else
          fun st ->
            bulk_acct st dn dc;
            (match Interp.alu32 pc op (reg st dst) (reg st src) with
            | Ok r -> set_reg st dst r
            | Error f -> raise (Vm_fault f));
            k st
    | Ir.Alu { is64 = true; op; dst; src } -> gen_alu64 ~dst ~src op k
    | Ir.Alu { is64 = false; op; dst; src } -> (
        (* non-faulting 32-bit (imm divisors statically nonzero): routed
           through the shared semantics for exact parity *)
        match src with
        | Ir.Imm v ->
            fun st ->
              (match Interp.alu32 pc op (reg st dst) v with
              | Ok r -> set_reg st dst r
              | Error f -> raise (Vm_fault f));
              k st
        | Ir.Reg src ->
            fun st ->
              (match Interp.alu32 pc op (reg st dst) (reg st src) with
              | Ok r -> set_reg st dst r
              | Error f -> raise (Vm_fault f));
              k st)
    | Ir.Swap { dst; endianness; width } ->
        fun st ->
          (match Interp.byte_swap pc endianness width (reg st dst) with
          | Ok v -> set_reg st dst v
          | Error f -> raise (Vm_fault f));
          k st
    | Ir.Load { dst; base; off; nbytes; elide = true; _ } ->
        let off64 = Int64.of_int off in
        if nbytes = 8 then fun st ->
          let o =
            Int64.to_int (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
          in
          if o < 0 || o > stack_size - 8 then
            raise
              (Vm_fault
                 (Fault.Memory_access
                    {
                      pc;
                      addr = Int64.add (reg st base) off64;
                      size = 8;
                      write = false;
                    }));
          set_reg st dst (get64 st.stack o);
          k st
        else fun st ->
          let o =
            Int64.to_int (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
          in
          if o < 0 || o + nbytes > stack_size then
            raise
              (Vm_fault
                 (Fault.Memory_access
                    {
                      pc;
                      addr = Int64.add (reg st base) off64;
                      size = nbytes;
                      write = false;
                    }));
          set_reg st dst (load_direct st.stack o nbytes);
          k st
    | Ir.Load { dst; base; off; nbytes; hoist; _ } ->
        let off64 = Int64.of_int off in
        if hoist then begin
          let slot = fresh_slot () in
          fun st ->
            bulk_acct st dn dc;
            let addr = Int64.add (reg st base) off64 in
            (match Array.unsafe_get st.rcache slot with
            | Some r when Region.contains r addr nbytes ->
                set_reg st dst
                  (load_direct r.Region.data (Region.offset_of r addr) nbytes)
            | _ -> (
                match Mem.find st.mem ~addr ~size:nbytes ~write:false with
                | Some r ->
                    if st.cache_ok && in_snapshot st r then
                      st.rcache.(slot) <- Some r;
                    set_reg st dst
                      (load_direct r.Region.data (Region.offset_of r addr)
                         nbytes)
                | None ->
                    raise
                      (Vm_fault
                         (Fault.Memory_access
                            { pc; addr; size = nbytes; write = false }))));
            k st
        end
        else fun st ->
          bulk_acct st dn dc;
          let addr = Int64.add (reg st base) off64 in
          (match Mem.load st.mem ~addr ~size:nbytes with
          | Ok v -> set_reg st dst v
          | Error () ->
              raise
                (Vm_fault
                   (Fault.Memory_access { pc; addr; size = nbytes; write = false })));
          k st
    | Ir.Store { base; off; nbytes; v; elide = true; _ } ->
        let off64 = Int64.of_int off in
        let gen_store read_v =
          if nbytes = 8 then fun st ->
            let o =
              Int64.to_int
                (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
            in
            if o < 0 || o > stack_size - 8 then
              raise
                (Vm_fault
                   (Fault.Memory_access
                      {
                        pc;
                        addr = Int64.add (reg st base) off64;
                        size = 8;
                        write = true;
                      }));
            if o < st.dirty_lo then st.dirty_lo <- o;
            if o + 8 > st.dirty_hi then st.dirty_hi <- o + 8;
            set64 st.stack o (read_v st);
            k st
          else fun st ->
            let o =
              Int64.to_int
                (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
            in
            if o < 0 || o + nbytes > stack_size then
              raise
                (Vm_fault
                   (Fault.Memory_access
                      {
                        pc;
                        addr = Int64.add (reg st base) off64;
                        size = nbytes;
                        write = true;
                      }));
            mark_dirty st o (o + nbytes);
            store_direct st.stack o nbytes (read_v st);
            k st
        in
        (match v with
        | Ir.Imm c -> gen_store (fun _ -> c)
        | Ir.Reg r -> gen_store (fun st -> reg st r))
    | Ir.Store { base; off; nbytes; v; hoist; _ } ->
        let off64 = Int64.of_int off in
        let read_v =
          match v with
          | Ir.Imm c -> fun (_ : state) -> c
          | Ir.Reg r -> fun st -> reg st r
        in
        if hoist then begin
          let slot = fresh_slot () in
          fun st ->
            bulk_acct st dn dc;
            let addr = Int64.add (reg st base) off64 in
            (match Array.unsafe_get st.rcache slot with
            | Some r when Region.contains r addr nbytes ->
                store_direct r.Region.data (Region.offset_of r addr) nbytes
                  (read_v st);
                mark_checked_store st addr nbytes
            | _ -> (
                match Mem.find st.mem ~addr ~size:nbytes ~write:true with
                | Some r ->
                    if st.cache_ok && in_snapshot st r then
                      st.rcache.(slot) <- Some r;
                    store_direct r.Region.data (Region.offset_of r addr) nbytes
                      (read_v st);
                    mark_checked_store st addr nbytes
                | None ->
                    raise
                      (Vm_fault
                         (Fault.Memory_access
                            { pc; addr; size = nbytes; write = true }))));
            k st
        end
        else fun st ->
          bulk_acct st dn dc;
          let addr = Int64.add (reg st base) off64 in
          (match Mem.store st.mem ~addr ~size:nbytes (read_v st) with
          | Ok () -> mark_checked_store st addr nbytes
          | Error () ->
              raise
                (Vm_fault
                   (Fault.Memory_access { pc; addr; size = nbytes; write = true })));
          k st
    | Ir.Call { id } -> (
        match Helper.find helpers id with
        | None ->
            fun st ->
              bulk_acct st dn dc;
              raise (Vm_fault (Fault.Unknown_helper { pc; id }))
        | Some entry ->
            let name = entry.Helper.name in
            let hcost = entry.Helper.cost_cycles in
            let fn = entry.Helper.fn in
            fun st ->
              bulk_acct st dn dc;
              st.stats.Interp.helper_calls <- st.stats.Interp.helper_calls + 1;
              if Obs.tracing () then
                Obs.event (fun () -> Otrace.Helper_call { id; name });
              st.stats.Interp.cycles <- st.stats.Interp.cycles + hcost;
              let a =
                {
                  Helper.a1 = reg st 1;
                  a2 = reg st 2;
                  a3 = reg st 3;
                  a4 = reg st 4;
                  a5 = reg st 5;
                }
              in
              (match fn st.mem a with
              | Ok r0 -> set_reg st 0 r0
              | Error message ->
                  raise (Vm_fault (Fault.Helper_error { pc; id; message })));
              st.dirty_lo <- 0;
              st.dirty_hi <- stack_size;
              k st)
    | Ir.Jcond { is64; cond; dst; src; dest } -> (
        (* Taken side exits leave the superblock; the block-entry guard
           already reserved one branch, so no compare is needed here. *)
        let taken : state -> int =
          match dest with
          | Ir.Block id ->
              fun st ->
                st.stats.Interp.branches_taken <-
                  st.stats.Interp.branches_taken + 1;
                id
          | Ir.Out_of_range target ->
              fun st ->
                st.stats.Interp.branches_taken <-
                  st.stats.Interp.branches_taken + 1;
                raise (Vm_fault (Fault.Fall_off_end { pc = target }))
        in
        match src with
        | Ir.Imm v ->
            fun st ->
              bulk_acct st dn dc;
              if Interp.condition cond is64 (reg st dst) v then taken st
              else k st
        | Ir.Reg src ->
            fun st ->
              bulk_acct st dn dc;
              if Interp.condition cond is64 (reg st dst) (reg st src) then
                taken st
              else k st)
    | Ir.Trap f ->
        let exn = Vm_fault f in
        fun st ->
          bulk_acct st dn dc;
          raise exn
    | Ir.Trap_pre f ->
        (* decoded-tier register-range check: faults before accounting;
           the lifter gives these steps weight 0, so [dn] covers only the
           preceding steps' accounting, which the decoded tier has also
           already performed at this point *)
        let exn = Vm_fault f in
        fun st ->
          bulk_acct st dn dc;
          raise exn
  in
  let gen_block (b : Ir.block) : state -> int =
    let steps = b.Ir.steps in
    let n = Array.length steps in
    (* Forward pass: batch accounting between flush points.  Non-flush
       steps fold their weight/cost into the next flush point (or the
       terminator), which applies them *before* its own body — the exact
       moment the decoded tier would have finished accounting them. *)
    let dn = Array.make (n + 1) 0 and dc = Array.make (n + 1) 0 in
    let pn = ref 0 and pcyc = ref 0 in
    for i = 0 to n - 1 do
      let s = steps.(i) in
      if step_flushes s.Ir.op then begin
        dn.(i) <- !pn + s.Ir.weight;
        dc.(i) <- !pcyc + s.Ir.cost;
        pn := 0;
        pcyc := 0
      end
      else begin
        pn := !pn + s.Ir.weight;
        pcyc := !pcyc + s.Ir.cost
      end
    done;
    let tdn = !pn and tdc = !pcyc in
    let term_k : state -> int =
      match b.Ir.term with
      | Ir.Exit { weight; cost; _ } ->
          let dni = tdn + weight and dci = tdc + cost in
          fun st ->
            bulk_acct st dni dci;
            -1
      | Ir.Jump { weight; cost; dest; _ } -> (
          let dni = tdn + weight and dci = tdc + cost in
          match dest with
          | Ir.Block id ->
              fun st ->
                bulk_acct st dni dci;
                st.stats.Interp.branches_taken <-
                  st.stats.Interp.branches_taken + 1;
                id
          | Ir.Out_of_range target ->
              fun st ->
                bulk_acct st dni dci;
                st.stats.Interp.branches_taken <-
                  st.stats.Interp.branches_taken + 1;
                raise (Vm_fault (Fault.Fall_off_end { pc = target })))
      | Ir.Fall { dest } ->
          if tdn = 0 && tdc = 0 then fun _ -> dest
          else
            fun st ->
              bulk_acct st tdn tdc;
              dest
      | Ir.Halt f ->
          let exn = Vm_fault f in
          fun st ->
            bulk_acct st tdn tdc;
            raise exn
    in
    let body = ref term_k in
    for i = n - 1 downto 0 do
      body := gen_step steps.(i) dn.(i) dc.(i) !body
    done;
    let body = !body in
    if not checked then body
    else begin
      (* Budget headroom guard: the whole block must fit both remaining
         budgets (at most one branch is taken per pass — a taken side
         exit leaves the block).  When it does not, fall back to the
         threaded per-instruction code at the head pc for bit-exact
         budget faults. *)
      let w = b.Ir.weight in
      let head = b.Ir.head in
      if b.Ir.branch then
        fun st ->
          if
            st.stats.Interp.insns_executed + w > ilimit
            || st.stats.Interp.branches_taken >= blimit
          then begin
            (Array.unsafe_get fb_code head) st;
            -1
          end
          else body st
      else
        fun st ->
          if st.stats.Interp.insns_executed + w > ilimit then begin
            (Array.unsafe_get fb_code head) st;
            -1
          end
          else body st
    end
  in
  let nblocks = Array.length ir.Ir.blocks in
  let bcode = Array.make nblocks (fun (_ : state) -> -1) in
  Array.iteri (fun i b -> bcode.(i) <- gen_block b) ir.Ir.blocks;
  let entry =
    if nblocks = 0 then fun (_ : state) ->
      (* only an empty program lifts to zero superblocks *)
      raise (Vm_fault (Fault.Fall_off_end { pc = 0 }))
    else
      fun st ->
        let next = ref 0 in
        while !next >= 0 do
          next := (Array.unsafe_get bcode !next) st
        done
  in
  let elided = Ir.elided_checks ir in
  let hoisted = Ir.hoisted_checks ir in
  let compile_ns = Obs.now_ns () -. t0 in
  if Obs.enabled () then begin
    Ometrics.observe m_compile_ns compile_ns;
    Ometrics.add m_ir_elided elided
  end;
  let sh =
    {
      entry;
      code = fb_code;
      stack_top =
        Int64.add config.Config.stack_vaddr
          (Int64.of_int config.Config.stack_size);
      stack_size;
      fused = 0;
      proven = elided;
      ir_blocks = nblocks;
      elided;
      hoisted;
      cache_sites = !n_cache_sites;
      compile_ns;
    }
  in
  instantiate sh interp

let fused_count t = t.sh.fused
let proven_count t = t.sh.proven
let ir_blocks_count t = t.sh.ir_blocks
let elided_count t = t.sh.elided
let hoisted_count t = t.sh.hoisted
let compile_ns t = t.sh.compile_ns
let runs t = t.runs

(* [reset] is the warm pool's dividend: instead of zeroing the whole
   frame it zeroes only the dirty window the previous run's stores
   produced, then re-arms r10.  The register file is 88 bytes, cleared
   unconditionally. *)
let reset t =
  let st = t.st in
  Bytes.fill st.rf 0 88 '\000';
  if st.dirty_hi > st.dirty_lo then
    Bytes.fill st.stack st.dirty_lo (st.dirty_hi - st.dirty_lo) '\000';
  st.dirty_lo <- max_int;
  st.dirty_hi <- 0;
  set64 st.rf 80 t.sh.stack_top

let[@inline] load_args st (args : int64 array) =
  let n = Array.length args in
  if n > 0 then set64 st.rf 8 (Array.unsafe_get args 0);
  if n > 1 then set64 st.rf 16 (Array.unsafe_get args 1);
  if n > 2 then set64 st.rf 24 (Array.unsafe_get args 2);
  if n > 3 then set64 st.rf 32 (Array.unsafe_get args 3);
  if n > 4 then set64 st.rf 40 (Array.unsafe_get args 4)

let exec_exn ~args t =
  t.runs <- t.runs + 1;
  reset t;
  load_args t.st args;
  let stats = t.st.stats in
  stats.Interp.insns_executed <- 0;
  stats.Interp.branches_taken <- 0;
  stats.Interp.helper_calls <- 0;
  stats.Interp.cycles <- 0;
  t.sh.entry t.st

let exec ?(args = [||]) t =
  match exec_exn ~args t with
  | () -> Ok (get64 t.st.rf 0)
  | exception Vm_fault f -> Error f
  | exception Invalid_argument _ ->
      (* A violated analyzer proof or unsafe escape: contain it as a
         memory fault, like the trimmed interpreter. *)
      Error (Fault.Memory_access { pc = 0; addr = 0L; size = 0; write = false })

(* [run] mirrors [Interp.run]'s observability envelope so engine-level
   accounting is identical whichever tier a container runs on. *)
let run ?(args = [||]) t =
  if not (Obs.enabled ()) then exec ~args t
  else begin
    let t0 = Obs.now_ns () in
    let outcome = exec ~args t in
    let stats = t.st.stats in
    Ometrics.incr m_runs;
    Ometrics.add m_insns stats.Interp.insns_executed;
    Ometrics.add m_branches stats.Interp.branches_taken;
    Ometrics.add m_helper_calls stats.Interp.helper_calls;
    Ometrics.add m_cycles stats.Interp.cycles;
    Ometrics.observe m_run_ns (Obs.now_ns () -. t0);
    (match outcome with
    | Ok _ -> ()
    | Error f ->
        Ometrics.incr m_faults;
        Obs.event (fun () ->
            Otrace.Fault { kind = Fault.kind f; detail = Fault.to_string f }));
    Obs.event (fun () ->
        Otrace.Vm_run
          {
            insns = stats.Interp.insns_executed;
            branches = stats.Interp.branches_taken;
            helpers = stats.Interp.helper_calls;
            cycles = stats.Interp.cycles;
            ok = Result.is_ok outcome;
          });
    outcome
  end

(* [fire] is the engine's steady-state dispatch entry: no result value is
   constructed and only counters (plain mutable stores) are updated, so a
   successful run of an allocation-free program performs zero minor-heap
   allocation.  Returns [false] when the run faulted. *)
let fire ~args t =
  match exec_exn ~args t with
  | () ->
      if Obs.enabled () then begin
        let stats = t.st.stats in
        Ometrics.incr m_runs;
        Ometrics.add m_insns stats.Interp.insns_executed;
        Ometrics.add m_branches stats.Interp.branches_taken;
        Ometrics.add m_helper_calls stats.Interp.helper_calls;
        Ometrics.add m_cycles stats.Interp.cycles
      end;
      true
  | exception Vm_fault f ->
      if Obs.enabled () then begin
        let stats = t.st.stats in
        Ometrics.incr m_runs;
        Ometrics.add m_insns stats.Interp.insns_executed;
        Ometrics.add m_branches stats.Interp.branches_taken;
        Ometrics.add m_helper_calls stats.Interp.helper_calls;
        Ometrics.add m_cycles stats.Interp.cycles;
        Ometrics.incr m_faults;
        Obs.event (fun () ->
            Otrace.Fault { kind = Fault.kind f; detail = Fault.to_string f })
      end;
      false
  | exception Invalid_argument _ ->
      if Obs.enabled () then begin
        Ometrics.incr m_runs;
        Ometrics.incr m_faults
      end;
      false

let result t = get64 t.st.rf 0

let copy_registers t dst =
  for i = 0 to 10 do
    dst.(i) <- get64 t.st.rf (i lsl 3)
  done

(* Test-facing views of the pooled instance's private state. *)
let registers t =
  let a = Array.make 11 0L in
  copy_registers t a;
  a

let stack_bytes t = t.st.stack
let dirty_window t = (t.st.dirty_lo, t.st.dirty_hi)

let ram_bytes t =
  let word = Sys.word_size / 8 in
  88 (* register file *)
  + ((Array.length t.sh.code + t.sh.ir_blocks) * word)

(* The per-instance slice of the compiled tier: register file, inline
   cache slots, and the state record itself — everything [instantiate]
   allocates beyond the shared [code]. *)
let instance_ram_bytes t =
  let word = Sys.word_size / 8 in
  88 + ((Array.length t.st.rcache + Array.length t.st.snapshot + 10) * word)
