(* Closure-threaded execution tier: direct-threaded code for OCaml.

   [compile] translates the pre-decoded [Insn.kind array] into an array
   of mutually tail-calling closures, one per instruction slot — the
   decode/dispatch work the interpreter repeats on every step (fetch the
   instruction view, switch on its constructor, fetch operand fields) is
   done exactly once, at load time.  Each closure is specialized on its
   static operands: register indices become constant byte offsets into
   an unboxed register file, immediates are pre-sign-extended into
   captured [int64] constants, branch targets become captured indices
   into the code array, helper ids are resolved against the table once.

   Isolation semantics are unchanged.  In [Checked] mode every memory
   access still resolves through the allow-list and both finite-execution
   budgets are enforced, bit-for-bit like [Interp.exec_checked]
   (including fault identity and the stats visible at the fault point).
   [Proven] mode consumes the static analyzer's per-pc facts exactly like
   [Interp.exec_trimmed]: proven stack accesses compile to direct [Bytes]
   reads at one-subtraction offsets, budgets cannot fire (the analyzer
   only grants proofs to DAGs inside both static budgets) so their
   compares are compiled out, and a violated proof (analyzer bug) is
   contained as a memory fault rather than crashing the host.

   The register file is a flat 88-byte buffer accessed through the
   unboxed bytes-load/store primitives, so straight-line ALU chains run
   without minor-heap allocation — the property the engine's warm pool
   relies on.  Stores additionally maintain a dirty high-water mark over
   the stack so [reset] zeroes only the bytes the previous run touched.

   A superinstruction fusion pass (on for proof-bearing instances, or on
   request) merges the hot pairs the workloads emit — ALU-imm chains,
   compare+jump, load+ALU, and the spill/reload idiom — into single
   closures, eliminating the indirect dispatch between the two halves.
   [lddw] absorption is inherent to this tier: the pair becomes one
   closure holding the reassembled 64-bit constant. *)

open Femto_ebpf
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* Same process-wide VM metric names as [Interp]: the registry hands back
   the same handles, so "vm.runs" etc. aggregate across tiers. *)
let m_runs = Obs.counter "vm.runs"
let m_faults = Obs.counter "vm.faults"
let m_insns = Obs.counter "vm.insns"
let m_branches = Obs.counter "vm.branches"
let m_helper_calls = Obs.counter "vm.helper_calls"
let m_cycles = Obs.counter "vm.cycles"
let m_run_ns = Obs.histogram "vm.run_ns"
let m_compile_ns = Obs.histogram "vm.compile_ns"
let m_fused = Obs.counter "vm.fused_insns"

(* Unboxed native-endian 64-bit access into the register file and the
   stack.  The host is assumed little endian, like the interpreter's
   direct stack accessors; all register-file access goes through these
   two primitives so the representation is internally consistent. *)
external get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

type state = {
  rf : bytes; (* 11 registers x 8 bytes *)
  stack : bytes; (* shared with the paired Interp instance *)
  mem : Mem.t;
  mutable dirty_lo : int; (* dirty stack window [dirty_lo, dirty_hi) *)
  mutable dirty_hi : int;
}

type t = {
  code : (state -> unit) array;
  st : state;
  stats : Interp.stats; (* shared with the paired Interp instance *)
  stack_top : int64; (* pre-boxed r10 reset value *)
  stack_size : int;
  fused : int; (* superinstructions installed by the fusion pass *)
  proven : int; (* accesses compiled against analyzer proofs *)
  compile_ns : float;
  mutable runs : int;
}

type mode = Checked | Proven of bool array

exception Vm_fault of Fault.t

(* Pre-allocated containment fault for a violated analyzer proof — the
   same sentinel [Interp.exec_trimmed] reports. *)
let proof_trap =
  Vm_fault (Fault.Memory_access { pc = 0; addr = 0L; size = 0; write = false })

let[@inline always] reg st i = get64 st.rf (i lsl 3)
let[@inline always] set_reg st i v = set64 st.rf (i lsl 3) v

(* One 64-bit ALU step over the non-faulting operation subset; fused
   bodies switch on the captured (per-closure constant) operation tag. *)
let[@inline always] alu_step (op : Opcode.alu_op) (d : int64) (s : int64) =
  match op with
  | Opcode.Add -> Int64.add d s
  | Opcode.Sub -> Int64.sub d s
  | Opcode.Mul -> Int64.mul d s
  | Opcode.Or -> Int64.logor d s
  | Opcode.And -> Int64.logand d s
  | Opcode.Xor -> Int64.logxor d s
  | Opcode.Lsh -> Int64.shift_left d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Rsh -> Int64.shift_right_logical d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Arsh -> Int64.shift_right d (Int64.to_int (Int64.logand s 63L))
  | Opcode.Mov -> s
  | Opcode.Neg -> Int64.neg d
  | Opcode.Div | Opcode.Mod -> assert false (* excluded by [simple_alu] *)

let simple_alu (op : Opcode.alu_op) =
  match op with Opcode.Div | Opcode.Mod -> false | _ -> true

(* Little-endian direct stack access, identical to the interpreter's
   trimmed-loop accessors. *)
let load_direct data o nbytes =
  match nbytes with
  | 1 -> Int64.of_int (Bytes.get_uint8 data o)
  | 2 -> Int64.of_int (Bytes.get_uint16_le data o)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le data o)) 0xFFFF_FFFFL
  | _ -> Bytes.get_int64_le data o

let store_direct data o nbytes v =
  match nbytes with
  | 1 -> Bytes.set_uint8 data o (Int64.to_int v land 0xff)
  | 2 -> Bytes.set_uint16_le data o (Int64.to_int v land 0xffff)
  | 4 -> Bytes.set_int32_le data o (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le data o v

let compile ?(fuse = false) ~mode interp =
  let t0 = Obs.now_ns () in
  let program = Interp.program interp in
  let config = Interp.config interp in
  let helpers = Interp.helpers interp in
  let cost = Interp.cycle_cost interp in
  let stats = Interp.stats interp in
  let mem = Interp.mem interp in
  let stack = Interp.stack_data interp in
  let insns = Program.insns program in
  let kinds = Array.map Insn.kind insns in
  let len = Array.length kinds in
  let stack_size = config.Config.stack_size in
  let stack_vaddr = config.Config.stack_vaddr in
  let is_proven pc =
    match mode with
    | Checked -> false
    | Proven p -> pc < Array.length p && Array.unsafe_get p pc
  in
  (* In [Proven] mode the analyzer guarantees a DAG within both static
     budgets, so neither limit can be reached: compile the compares to
     always-false against [max_int], mirroring the trimmed loop. *)
  let ilimit, blimit =
    match mode with
    | Checked -> (Config.dynamic_instruction_limit config, config.Config.max_branches)
    | Proven _ -> (max_int, max_int)
  in
  (* The code array has one closure per slot, a fall-off trap at index
     [len], and one trap per out-of-range branch target (unreachable in
     verified programs, kept for exact decoded-tier fault parity). *)
  let trap_targets = ref [] in
  Array.iteri
    (fun pc k ->
      match k with
      | Insn.Ja | Insn.Jcond _ ->
          let target = pc + 1 + (Array.unsafe_get insns pc).Insn.offset in
          if (target < 0 || target > len) && not (List.mem target !trap_targets)
          then trap_targets := target :: !trap_targets
      | _ -> ())
    kinds;
  let traps = List.mapi (fun i target -> (target, len + 1 + i)) !trap_targets in
  let stub (_ : state) = () in
  let code = Array.make (len + 1 + List.length traps) stub in
  code.(len) <- (fun _ -> raise (Vm_fault (Fault.Fall_off_end { pc = len })));
  List.iter
    (fun (target, slot) ->
      code.(slot) <-
        (fun _ -> raise (Vm_fault (Fault.Fall_off_end { pc = target }))))
    traps;
  let resolve target =
    if target >= 0 && target <= len then target else List.assoc target traps
  in
  let[@inline] continue st i = (Array.unsafe_get code i) st in
  (* Per-original-instruction bookkeeping, in the decoded tier's exact
     order: count, budget-check, charge the cycle model. *)
  let[@inline] acct c =
    let n = stats.Interp.insns_executed + 1 in
    stats.Interp.insns_executed <- n;
    if n > ilimit then
      raise (Vm_fault (Fault.Instruction_budget_exhausted { executed = n }));
    stats.Interp.cycles <- stats.Interp.cycles + c
  in
  let[@inline] take_branch () =
    let b = stats.Interp.branches_taken + 1 in
    stats.Interp.branches_taken <- b;
    if b > blimit then
      raise (Vm_fault (Fault.Branch_budget_exhausted { taken = b }))
  in
  let[@inline] mark_dirty st lo hi =
    if lo < st.dirty_lo then st.dirty_lo <- lo;
    if hi > st.dirty_hi then st.dirty_hi <- hi
  in
  (* Post-hoc watermark maintenance for allow-list stores that landed in
     the stack region (the stack is the first region in the map, so an
     accepted access at a stack address is a stack access). *)
  let mark_checked_store st addr nbytes =
    let o = Int64.to_int (Int64.sub addr stack_vaddr) in
    if o >= 0 && o < stack_size then
      mark_dirty st (max 0 o) (min stack_size (o + nbytes))
  in
  (* --- specialized single-instruction generators --- *)
  let gen_alu64_imm ~pc ~c ~dst ~v ~next (op : Opcode.alu_op) =
    match op with
    | Opcode.Add ->
        fun st ->
          acct c;
          set_reg st dst (Int64.add (reg st dst) v);
          continue st next
    | Opcode.Sub ->
        fun st ->
          acct c;
          set_reg st dst (Int64.sub (reg st dst) v);
          continue st next
    | Opcode.Mul ->
        fun st ->
          acct c;
          set_reg st dst (Int64.mul (reg st dst) v);
          continue st next
    | Opcode.Div ->
        if Int64.equal v 0L then fun _ ->
          acct c;
          raise (Vm_fault (Fault.Division_by_zero { pc }))
        else
          fun st ->
            acct c;
            set_reg st dst (Int64.unsigned_div (reg st dst) v);
            continue st next
    | Opcode.Mod ->
        if Int64.equal v 0L then fun _ ->
          acct c;
          raise (Vm_fault (Fault.Division_by_zero { pc }))
        else
          fun st ->
            acct c;
            set_reg st dst (Int64.unsigned_rem (reg st dst) v);
            continue st next
    | Opcode.Or ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logor (reg st dst) v);
          continue st next
    | Opcode.And ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logand (reg st dst) v);
          continue st next
    | Opcode.Xor ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logxor (reg st dst) v);
          continue st next
    | Opcode.Lsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct c;
          set_reg st dst (Int64.shift_left (reg st dst) sh);
          continue st next
    | Opcode.Rsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct c;
          set_reg st dst (Int64.shift_right_logical (reg st dst) sh);
          continue st next
    | Opcode.Arsh ->
        let sh = Int64.to_int (Int64.logand v 63L) in
        fun st ->
          acct c;
          set_reg st dst (Int64.shift_right (reg st dst) sh);
          continue st next
    | Opcode.Neg ->
        fun st ->
          acct c;
          set_reg st dst (Int64.neg (reg st dst));
          continue st next
    | Opcode.Mov ->
        fun st ->
          acct c;
          set_reg st dst v;
          continue st next
  in
  let gen_alu64_reg ~pc ~c ~dst ~src ~next (op : Opcode.alu_op) =
    match op with
    | Opcode.Add ->
        fun st ->
          acct c;
          set_reg st dst (Int64.add (reg st dst) (reg st src));
          continue st next
    | Opcode.Sub ->
        fun st ->
          acct c;
          set_reg st dst (Int64.sub (reg st dst) (reg st src));
          continue st next
    | Opcode.Mul ->
        fun st ->
          acct c;
          set_reg st dst (Int64.mul (reg st dst) (reg st src));
          continue st next
    | Opcode.Div ->
        fun st ->
          acct c;
          let s = reg st src in
          if Int64.equal s 0L then
            raise (Vm_fault (Fault.Division_by_zero { pc }));
          set_reg st dst (Int64.unsigned_div (reg st dst) s);
          continue st next
    | Opcode.Mod ->
        fun st ->
          acct c;
          let s = reg st src in
          if Int64.equal s 0L then
            raise (Vm_fault (Fault.Division_by_zero { pc }));
          set_reg st dst (Int64.unsigned_rem (reg st dst) s);
          continue st next
    | Opcode.Or ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logor (reg st dst) (reg st src));
          continue st next
    | Opcode.And ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logand (reg st dst) (reg st src));
          continue st next
    | Opcode.Xor ->
        fun st ->
          acct c;
          set_reg st dst (Int64.logxor (reg st dst) (reg st src));
          continue st next
    | Opcode.Lsh ->
        fun st ->
          acct c;
          set_reg st dst
            (Int64.shift_left (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Rsh ->
        fun st ->
          acct c;
          set_reg st dst
            (Int64.shift_right_logical (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Arsh ->
        fun st ->
          acct c;
          set_reg st dst
            (Int64.shift_right (reg st dst)
               (Int64.to_int (Int64.logand (reg st src) 63L)));
          continue st next
    | Opcode.Neg ->
        fun st ->
          acct c;
          set_reg st dst (Int64.neg (reg st dst));
          continue st next
    | Opcode.Mov ->
        fun st ->
          acct c;
          set_reg st dst (reg st src);
          continue st next
  in
  let gen_solo pc =
    let insn = Array.unsafe_get insns pc in
    let kind = Array.unsafe_get kinds pc in
    let dst = insn.Insn.dst and src = insn.Insn.src in
    let off64 = Int64.of_int insn.Insn.offset in
    let imm = insn.Insn.imm in
    let c = cost kind in
    let next = pc + 1 in
    (* The verifier guarantees register fields <= 10; these compile-time
       traps keep even unverified garbage contained, with the decoded
       tier's fault (raised before any accounting, like its check). *)
    if dst > 10 then fun _ ->
      raise (Vm_fault (Fault.Invalid_register { pc; reg = dst }))
    else if src > 10 then fun _ ->
      raise (Vm_fault (Fault.Invalid_register { pc; reg = src }))
    else
      match kind with
      | Insn.Alu (true, op, Opcode.Src_imm) ->
          gen_alu64_imm ~pc ~c ~dst ~v:(Int64.of_int32 imm) ~next op
      | Insn.Alu (true, op, Opcode.Src_reg) ->
          gen_alu64_reg ~pc ~c ~dst ~src ~next op
      | Insn.Alu (false, op, Opcode.Src_imm) ->
          (* 32-bit ALU is rare in our workloads: route through the
             shared semantics for exact parity with the other engines. *)
          let v = Int64.of_int32 imm in
          fun st ->
            acct c;
            (match Interp.alu32 pc op (reg st dst) v with
            | Ok r -> set_reg st dst r
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Alu (false, op, Opcode.Src_reg) ->
          fun st ->
            acct c;
            (match Interp.alu32 pc op (reg st dst) (reg st src) with
            | Ok r -> set_reg st dst r
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Load size ->
          let nbytes = Opcode.size_bytes size in
          if is_proven pc then
            if size = Opcode.DW then fun st ->
              acct c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st src) off64) stack_vaddr)
              in
              if o < 0 || o > stack_size - 8 then raise proof_trap;
              set_reg st dst (get64 st.stack o);
              continue st next
            else fun st ->
              acct c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st src) off64) stack_vaddr)
              in
              if o < 0 || o + nbytes > stack_size then raise proof_trap;
              set_reg st dst (load_direct st.stack o nbytes);
              continue st next
          else fun st ->
            acct c;
            let addr = Int64.add (reg st src) off64 in
            (match Mem.load st.mem ~addr ~size:nbytes with
            | Ok v -> set_reg st dst v
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = false })));
            continue st next
      | Insn.Store_imm size ->
          let nbytes = Opcode.size_bytes size in
          let v = Int64.of_int32 imm in
          if is_proven pc then fun st ->
            acct c;
            let o =
              Int64.to_int (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
            in
            if o < 0 || o + nbytes > stack_size then raise proof_trap;
            mark_dirty st o (o + nbytes);
            store_direct st.stack o nbytes v;
            continue st next
          else fun st ->
            acct c;
            let addr = Int64.add (reg st dst) off64 in
            (match Mem.store st.mem ~addr ~size:nbytes v with
            | Ok () -> mark_checked_store st addr nbytes
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = true })));
            continue st next
      | Insn.Store_reg size ->
          let nbytes = Opcode.size_bytes size in
          if is_proven pc then
            if size = Opcode.DW then fun st ->
              acct c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
              in
              if o < 0 || o > stack_size - 8 then raise proof_trap;
              if o < st.dirty_lo then st.dirty_lo <- o;
              if o + 8 > st.dirty_hi then st.dirty_hi <- o + 8;
              set64 st.stack o (reg st src);
              continue st next
            else fun st ->
              acct c;
              let o =
                Int64.to_int
                  (Int64.sub (Int64.add (reg st dst) off64) stack_vaddr)
              in
              if o < 0 || o + nbytes > stack_size then raise proof_trap;
              mark_dirty st o (o + nbytes);
              store_direct st.stack o nbytes (reg st src);
              continue st next
          else fun st ->
            acct c;
            let addr = Int64.add (reg st dst) off64 in
            (match Mem.store st.mem ~addr ~size:nbytes (reg st src) with
            | Ok () -> mark_checked_store st addr nbytes
            | Error () ->
                raise
                  (Vm_fault
                     (Fault.Memory_access
                        { pc; addr; size = nbytes; write = true })));
            continue st next
      | Insn.Lddw_head ->
          (* lddw absorption: the pair collapses into one closure holding
             the reassembled constant; the tail slot keeps its own trap
             closure in case a (necessarily unverified) jump lands on it. *)
          if pc + 1 >= len then fun _ ->
            acct c;
            raise (Vm_fault (Fault.Truncated_lddw { pc }))
          else
            let tail = Array.unsafe_get insns (pc + 1) in
            let v = Insn.lddw_imm ~head:insn ~tail in
            let next2 = pc + 2 in
            fun st ->
              acct c;
              set_reg st dst v;
              continue st next2
      | Insn.Lddw_tail ->
          fun _ ->
            acct c;
            raise (Vm_fault (Fault.Invalid_opcode { pc; opcode = 0 }))
      | Insn.End endianness ->
          fun st ->
            acct c;
            (match Interp.byte_swap pc endianness imm (reg st dst) with
            | Ok v -> set_reg st dst v
            | Error f -> raise (Vm_fault f));
            continue st next
      | Insn.Ja ->
          let target = resolve (pc + 1 + insn.Insn.offset) in
          fun st ->
            acct c;
            take_branch ();
            continue st target
      | Insn.Jcond (is64, cond, source) -> (
          let target = resolve (pc + 1 + insn.Insn.offset) in
          match source with
          | Opcode.Src_imm ->
              let v = Int64.of_int32 imm in
              fun st ->
                acct c;
                if Interp.condition cond is64 (reg st dst) v then begin
                  take_branch ();
                  continue st target
                end
                else continue st next
          | Opcode.Src_reg ->
              fun st ->
                acct c;
                if Interp.condition cond is64 (reg st dst) (reg st src) then begin
                  take_branch ();
                  continue st target
                end
                else continue st next)
      | Insn.Call -> (
          let id = Int32.to_int imm in
          match Helper.find helpers id with
          | None ->
              fun _ ->
                acct c;
                raise (Vm_fault (Fault.Unknown_helper { pc; id }))
          | Some entry ->
              let name = entry.Helper.name in
              let hcost = entry.Helper.cost_cycles in
              let fn = entry.Helper.fn in
              fun st ->
                acct c;
                stats.Interp.helper_calls <- stats.Interp.helper_calls + 1;
                if Obs.tracing () then
                  Obs.event (fun () -> Otrace.Helper_call { id; name });
                stats.Interp.cycles <- stats.Interp.cycles + hcost;
                let a =
                  {
                    Helper.a1 = reg st 1;
                    a2 = reg st 2;
                    a3 = reg st 3;
                    a4 = reg st 4;
                    a5 = reg st 5;
                  }
                in
                (match fn st.mem a with
                | Ok r0 -> set_reg st 0 r0
                | Error message ->
                    raise (Vm_fault (Fault.Helper_error { pc; id; message })));
                (* The helper may have written anywhere its allow-list
                   permits, including the stack: conservatively mark the
                   whole frame dirty. *)
                st.dirty_lo <- 0;
                st.dirty_hi <- stack_size;
                continue st next)
      | Insn.Exit -> fun _ -> acct c
      | Insn.Invalid opcode ->
          fun _ ->
            acct c;
            raise (Vm_fault (Fault.Invalid_opcode { pc; opcode }))
  in
  for pc = len - 1 downto 0 do
    code.(pc) <- gen_solo pc
  done;
  (* --- superinstruction fusion ---

     A fused closure at [pc] performs both instructions and continues at
     [pc + 2]; the solo closure at [pc + 1] stays in place, so a branch
     landing between the pair still executes correctly.  Bookkeeping is
     performed per original instruction, in order, so stats and fault
     identity stay bit-identical to the unfused tier. *)
  let fused = ref 0 in
  if fuse then
    for pc = 0 to len - 2 do
      let i1 = Array.unsafe_get insns pc in
      let i2 = Array.unsafe_get insns (pc + 1) in
      let k1 = Array.unsafe_get kinds pc in
      let k2 = Array.unsafe_get kinds (pc + 1) in
      if i1.Insn.dst <= 10 && i1.Insn.src <= 10 && i2.Insn.dst <= 10
         && i2.Insn.src <= 10
      then begin
        let c1 = cost k1 and c2 = cost k2 in
        let nn = pc + 2 in
        match (k1, k2) with
        (* spill/reload: a proven store immediately re-read through the
           same base register, offset and width becomes one bounds check,
           one store and a register move. *)
        | Insn.Store_reg Opcode.DW, Insn.Load Opcode.DW
          when is_proven pc
               && is_proven (pc + 1)
               && i2.Insn.src = i1.Insn.dst
               && i2.Insn.offset = i1.Insn.offset ->
            let base = i1.Insn.dst
            and v_src = i1.Insn.src
            and l_dst = i2.Insn.dst in
            let off64 = Int64.of_int i1.Insn.offset in
            code.(pc) <-
              (fun st ->
                acct c1;
                let o =
                  Int64.to_int
                    (Int64.sub (Int64.add (reg st base) off64) stack_vaddr)
                in
                if o < 0 || o > stack_size - 8 then raise proof_trap;
                if o < st.dirty_lo then st.dirty_lo <- o;
                if o + 8 > st.dirty_hi then st.dirty_hi <- o + 8;
                let v = reg st v_src in
                set64 st.stack o v;
                acct c2;
                set_reg st l_dst v;
                continue st nn);
            incr fused
        (* proven load feeding a 64-bit ALU op through its destination *)
        | Insn.Load Opcode.DW, Insn.Alu (true, op2, Opcode.Src_reg)
          when is_proven pc && simple_alu op2 && i2.Insn.src = i1.Insn.dst ->
            let l_src = i1.Insn.src and l_dst = i1.Insn.dst in
            let d2 = i2.Insn.dst in
            let off64 = Int64.of_int i1.Insn.offset in
            code.(pc) <-
              (fun st ->
                acct c1;
                let o =
                  Int64.to_int
                    (Int64.sub (Int64.add (reg st l_src) off64) stack_vaddr)
                in
                if o < 0 || o > stack_size - 8 then raise proof_trap;
                let v = get64 st.stack o in
                set_reg st l_dst v;
                acct c2;
                set_reg st d2 (alu_step op2 (reg st d2) v);
                continue st nn);
            incr fused
        (* compare-and-jump: ALU-imm followed by a conditional jump *)
        | Insn.Alu (true, op1, Opcode.Src_imm), Insn.Jcond (is64, cond, source)
          when simple_alu op1 ->
            let d1 = i1.Insn.dst in
            let v1 = Int64.of_int32 i1.Insn.imm in
            let d2 = i2.Insn.dst and s2 = i2.Insn.src in
            let target = resolve (pc + 2 + i2.Insn.offset) in
            (match source with
            | Opcode.Src_imm ->
                let v2 = Int64.of_int32 i2.Insn.imm in
                code.(pc) <-
                  (fun st ->
                    acct c1;
                    set_reg st d1 (alu_step op1 (reg st d1) v1);
                    acct c2;
                    if Interp.condition cond is64 (reg st d2) v2 then begin
                      take_branch ();
                      continue st target
                    end
                    else continue st nn)
            | Opcode.Src_reg ->
                code.(pc) <-
                  (fun st ->
                    acct c1;
                    set_reg st d1 (alu_step op1 (reg st d1) v1);
                    acct c2;
                    if Interp.condition cond is64 (reg st d2) (reg st s2)
                    then begin
                      take_branch ();
                      continue st target
                    end
                    else continue st nn));
            incr fused
        (* ALU-imm chain *)
        | Insn.Alu (true, op1, Opcode.Src_imm), Insn.Alu (true, op2, Opcode.Src_imm)
          when simple_alu op1 && simple_alu op2 ->
            let d1 = i1.Insn.dst and d2 = i2.Insn.dst in
            let v1 = Int64.of_int32 i1.Insn.imm in
            let v2 = Int64.of_int32 i2.Insn.imm in
            code.(pc) <-
              (fun st ->
                acct c1;
                set_reg st d1 (alu_step op1 (reg st d1) v1);
                acct c2;
                set_reg st d2 (alu_step op2 (reg st d2) v2);
                continue st nn);
            incr fused
        | _ -> ()
      end
    done;
  let proven =
    match mode with
    | Checked -> 0
    | Proven p -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 p
  in
  let st =
    { rf = Bytes.make 88 '\000'; stack; mem; dirty_lo = max_int; dirty_hi = 0 }
  in
  let compile_ns = Obs.now_ns () -. t0 in
  if Obs.enabled () then begin
    Ometrics.observe m_compile_ns compile_ns;
    Ometrics.add m_fused !fused
  end;
  {
    code;
    st;
    stats;
    stack_top =
      Int64.add config.Config.stack_vaddr (Int64.of_int config.Config.stack_size);
    stack_size;
    fused = !fused;
    proven;
    compile_ns;
    runs = 0;
  }

let fused_count t = t.fused
let proven_count t = t.proven
let compile_ns t = t.compile_ns
let runs t = t.runs

(* [reset] is the warm pool's dividend: instead of zeroing the whole
   frame it zeroes only the dirty window the previous run's stores
   produced, then re-arms r10.  The register file is 88 bytes, cleared
   unconditionally. *)
let reset t =
  let st = t.st in
  Bytes.fill st.rf 0 88 '\000';
  if st.dirty_hi > st.dirty_lo then
    Bytes.fill st.stack st.dirty_lo (st.dirty_hi - st.dirty_lo) '\000';
  st.dirty_lo <- max_int;
  st.dirty_hi <- 0;
  set64 st.rf 80 t.stack_top

let[@inline] load_args st (args : int64 array) =
  let n = Array.length args in
  if n > 0 then set64 st.rf 8 (Array.unsafe_get args 0);
  if n > 1 then set64 st.rf 16 (Array.unsafe_get args 1);
  if n > 2 then set64 st.rf 24 (Array.unsafe_get args 2);
  if n > 3 then set64 st.rf 32 (Array.unsafe_get args 3);
  if n > 4 then set64 st.rf 40 (Array.unsafe_get args 4)

let exec_exn ~args t =
  t.runs <- t.runs + 1;
  reset t;
  load_args t.st args;
  let stats = t.stats in
  stats.Interp.insns_executed <- 0;
  stats.Interp.branches_taken <- 0;
  stats.Interp.helper_calls <- 0;
  stats.Interp.cycles <- 0;
  (Array.unsafe_get t.code 0) t.st

let exec ?(args = [||]) t =
  match exec_exn ~args t with
  | () -> Ok (get64 t.st.rf 0)
  | exception Vm_fault f -> Error f
  | exception Invalid_argument _ ->
      (* A violated analyzer proof or unsafe escape: contain it as a
         memory fault, like the trimmed interpreter. *)
      Error (Fault.Memory_access { pc = 0; addr = 0L; size = 0; write = false })

(* [run] mirrors [Interp.run]'s observability envelope so engine-level
   accounting is identical whichever tier a container runs on. *)
let run ?(args = [||]) t =
  if not (Obs.enabled ()) then exec ~args t
  else begin
    let t0 = Obs.now_ns () in
    let outcome = exec ~args t in
    let stats = t.stats in
    Ometrics.incr m_runs;
    Ometrics.add m_insns stats.Interp.insns_executed;
    Ometrics.add m_branches stats.Interp.branches_taken;
    Ometrics.add m_helper_calls stats.Interp.helper_calls;
    Ometrics.add m_cycles stats.Interp.cycles;
    Ometrics.observe m_run_ns (Obs.now_ns () -. t0);
    (match outcome with
    | Ok _ -> ()
    | Error f ->
        Ometrics.incr m_faults;
        Obs.event (fun () ->
            Otrace.Fault { kind = Fault.kind f; detail = Fault.to_string f }));
    Obs.event (fun () ->
        Otrace.Vm_run
          {
            insns = stats.Interp.insns_executed;
            branches = stats.Interp.branches_taken;
            helpers = stats.Interp.helper_calls;
            cycles = stats.Interp.cycles;
            ok = Result.is_ok outcome;
          });
    outcome
  end

(* [fire] is the engine's steady-state dispatch entry: no result value is
   constructed and only counters (plain mutable stores) are updated, so a
   successful run of an allocation-free program performs zero minor-heap
   allocation.  Returns [false] when the run faulted. *)
let fire ~args t =
  match exec_exn ~args t with
  | () ->
      if Obs.enabled () then begin
        let stats = t.stats in
        Ometrics.incr m_runs;
        Ometrics.add m_insns stats.Interp.insns_executed;
        Ometrics.add m_branches stats.Interp.branches_taken;
        Ometrics.add m_helper_calls stats.Interp.helper_calls;
        Ometrics.add m_cycles stats.Interp.cycles
      end;
      true
  | exception Vm_fault f ->
      if Obs.enabled () then begin
        let stats = t.stats in
        Ometrics.incr m_runs;
        Ometrics.add m_insns stats.Interp.insns_executed;
        Ometrics.add m_branches stats.Interp.branches_taken;
        Ometrics.add m_helper_calls stats.Interp.helper_calls;
        Ometrics.add m_cycles stats.Interp.cycles;
        Ometrics.incr m_faults;
        Obs.event (fun () ->
            Otrace.Fault { kind = Fault.kind f; detail = Fault.to_string f })
      end;
      false
  | exception Invalid_argument _ ->
      if Obs.enabled () then begin
        Ometrics.incr m_runs;
        Ometrics.incr m_faults
      end;
      false

let result t = get64 t.st.rf 0

let copy_registers t dst =
  for i = 0 to 10 do
    dst.(i) <- get64 t.st.rf (i lsl 3)
  done

(* Test-facing views of the pooled instance's private state. *)
let registers t =
  let a = Array.make 11 0L in
  copy_registers t a;
  a

let stack_bytes t = t.st.stack
let dirty_window t = (t.st.dirty_lo, t.st.dirty_hi)

let ram_bytes t =
  let word = Sys.word_size / 8 in
  88 (* register file *) + (Array.length t.code * word)
