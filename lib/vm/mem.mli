(** Runtime memory-access checks against a container's allow-list.

    Every load/store computed by the VM — including register-computed
    addresses — resolves against the region list; an access no region
    permits aborts execution (Figure 4 of the paper). *)

type t

val create : Region.t list -> t
val regions : t -> Region.t list

val raw_regions : t -> Region.t array
(** The live region array, without copying — the compiled tier's region
    inline caches snapshot it to reason about scan order.  [add_region]
    replaces the array (append), so a cached array identity also
    witnesses that no region has been added since. *)

val add_region : t -> Region.t -> unit

val find : t -> addr:int64 -> size:int -> write:bool -> Region.t option
(** First region permitting the access, scanning in list order. *)

val load : t -> addr:int64 -> size:int -> (int64, unit) result
(** Checked little-endian load of 1, 2, 4 or 8 bytes, zero-extended as
    eBPF LDX requires.  [Error ()] when no region allows the read. *)

val store : t -> addr:int64 -> size:int -> int64 -> (unit, unit) result
(** Checked little-endian store (value truncated to [size]). *)

val load_bytes : t -> addr:int64 -> len:int -> (bytes, unit) result
(** Helper-facing bulk read obeying the same allow-list. *)

val store_bytes : t -> addr:int64 -> bytes -> (unit, unit) result
(** Helper-facing bulk write obeying the same allow-list. *)
