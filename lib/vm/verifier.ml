(* Pre-flight instruction checker.

   Runs once, before a program is executed for the first time (paper §7,
   "Pre-flight instruction checks").  After a program passes, the
   interpreter can trust:
     - every opcode decodes to a known instruction;
     - register fields are in range and r10 is never written;
     - every jump lands on a real instruction inside the program (never on
       the second slot of an lddw pair);
     - every lddw pair is complete and well formed;
     - execution cannot fall off the end (last slot is exit or ja);
     - reserved fields are zero (catches relocation/toolchain bugs and
       removes hidden state from the bytecode);
     - the program fits the static instruction budget N_i. *)

open Femto_ebpf

type ok = { insn_count : int; branch_count : int; call_ids : int list }

let writes_dst = function
  | Insn.Alu _ | Insn.Load _ | Insn.Lddw_head | Insn.End _ -> true
  | Insn.Store_imm _ | Insn.Store_reg _ | Insn.Ja | Insn.Jcond _ | Insn.Call
  | Insn.Exit | Insn.Lddw_tail | Insn.Invalid _ ->
      false

let is_branch = function
  | Insn.Ja | Insn.Jcond _ -> true
  | Insn.Alu _ | Insn.Load _ | Insn.Store_imm _ | Insn.Store_reg _
  | Insn.Lddw_head | Insn.Lddw_tail | Insn.End _ | Insn.Call | Insn.Exit
  | Insn.Invalid _ ->
      false

let check_registers pc (insn : Insn.t) kind =
  if insn.dst > 10 then Error (Fault.Invalid_register { pc; reg = insn.dst })
  else if insn.src > 10 then Error (Fault.Invalid_register { pc; reg = insn.src })
  else if insn.dst = 10 && writes_dst kind then Error (Fault.Readonly_register { pc })
  else Ok ()

(* Reserved fields must be zero: offset on ALU/call/exit, src on
   immediate-source forms, imm on register-source forms. *)
let check_reserved pc (insn : Insn.t) kind =
  let fail field = Error (Fault.Nonzero_field { pc; field }) in
  match kind with
  | Insn.Alu (_, _, Opcode.Src_imm) ->
      if insn.offset <> 0 then fail "offset"
      else if insn.src <> 0 then fail "src"
      else Ok ()
  | Insn.Alu (_, _, Opcode.Src_reg) ->
      if insn.offset <> 0 then fail "offset"
      else if insn.imm <> 0l then fail "imm"
      else Ok ()
  | Insn.Jcond (_, _, Opcode.Src_imm) -> if insn.src <> 0 then fail "src" else Ok ()
  | Insn.Jcond (_, _, Opcode.Src_reg) -> if insn.imm <> 0l then fail "imm" else Ok ()
  | Insn.Ja ->
      if insn.dst <> 0 then fail "dst"
      else if insn.src <> 0 then fail "src"
      else if insn.imm <> 0l then fail "imm"
      else Ok ()
  | Insn.Call ->
      if insn.dst <> 0 then fail "dst"
      else if insn.src <> 0 then fail "src"
      else if insn.offset <> 0 then fail "offset"
      else Ok ()
  | Insn.Exit ->
      if insn.dst <> 0 then fail "dst"
      else if insn.src <> 0 then fail "src"
      else if insn.offset <> 0 then fail "offset"
      else if insn.imm <> 0l then fail "imm"
      else Ok ()
  | Insn.End _ ->
      if insn.offset <> 0 then fail "offset"
      else if insn.src <> 0 then fail "src"
      else if not (List.mem insn.imm [ 16l; 32l; 64l ]) then fail "end width"
      else Ok ()
  | Insn.Load _ -> if insn.imm <> 0l then fail "imm" else Ok ()
  | Insn.Store_imm _ -> if insn.src <> 0 then fail "src" else Ok ()
  | Insn.Store_reg _ -> if insn.imm <> 0l then fail "imm" else Ok ()
  | Insn.Lddw_head -> if insn.offset <> 0 || insn.src <> 0 then fail "lddw head" else Ok ()
  | Insn.Lddw_tail | Insn.Invalid _ -> Ok ()

let ( let* ) = Result.bind

(* [verify ?helpers config program] returns static counts on success or the
   first fault found. *)
let verify ?helpers (config : Config.t) program =
  let len = Program.length program in
  if len = 0 then Error Fault.Empty_program
  else if len > config.max_insns then
    Error (Fault.Program_too_long { len; max = config.max_insns })
  else begin
    (* First sweep: identify lddw tails so jump-target checks can refuse
       them. *)
    let is_tail = Array.make len false in
    let rec mark pc =
      if pc >= len then Ok ()
      else
        let insn = Program.get program pc in
        match Insn.kind insn with
        | Insn.Lddw_head ->
            if pc + 1 >= len then Error (Fault.Truncated_lddw { pc })
            else
              let tail = Program.get program (pc + 1) in
              if tail.Insn.opcode <> 0 || tail.Insn.dst <> 0 || tail.Insn.src <> 0
                 || tail.Insn.offset <> 0
              then Error (Fault.Malformed_lddw_tail { pc = pc + 1 })
              else begin
                is_tail.(pc + 1) <- true;
                mark (pc + 2)
              end
        | _ -> mark (pc + 1)
    in
    let* () = mark 0 in
    let branch_count = ref 0 in
    let call_ids = ref [] in
    let check_jump pc offset =
      let target = pc + 1 + offset in
      if target < 0 || target >= len then Error (Fault.Bad_jump { pc; target })
      else if is_tail.(target) then Error (Fault.Jump_to_lddw_tail { pc; target })
      else if (Program.get program target).Insn.opcode = 0 then
        (* Orphan tail-shaped slot (opcode 0, any imm): not marked by the
           lddw sweep because no head precedes it, so [is_tail] misses it —
           notably when it sits at [len-1] and the jump is the last
           executable slot.  Reject at the jump site rather than relying on
           the later per-slot sweep to flag the slot itself. *)
        Error (Fault.Jump_to_lddw_tail { pc; target })
      else Ok ()
    in
    let rec check pc =
      if pc >= len then Ok ()
      else if is_tail.(pc) then check (pc + 1)
      else
        let insn = Program.get program pc in
        let kind = Insn.kind insn in
        let* () =
          match kind with
          | Insn.Invalid opcode -> Error (Fault.Invalid_opcode { pc; opcode })
          | _ -> Ok ()
        in
        let* () = check_registers pc insn kind in
        let* () = check_reserved pc insn kind in
        let* () =
          match kind with
          | Insn.Ja | Insn.Jcond _ ->
              incr branch_count;
              check_jump pc insn.offset
          | Insn.Call -> (
              let id = Int32.to_int insn.imm in
              call_ids := id :: !call_ids;
              match helpers with
              | None -> Ok ()
              | Some registry ->
                  if Helper.mem registry id then Ok ()
                  else Error (Fault.Unknown_helper { pc; id }))
          | _ -> Ok ()
        in
        check (pc + 1)
    in
    let* () = check 0 in
    (* No fall-through past the end: the last executable slot must be exit
       or an unconditional jump. *)
    let last = len - 1 in
    let last_exec = if is_tail.(last) then last - 1 else last in
    let* () =
      match Insn.kind (Program.get program last_exec) with
      | Insn.Exit | Insn.Ja -> Ok ()
      | _ -> Error (Fault.Bad_end_instruction { pc = last_exec })
    in
    Ok
      {
        insn_count = len;
        branch_count = !branch_count;
        call_ids = List.rev !call_ids;
      }
  end
