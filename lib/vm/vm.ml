(* Facade for the Femto-Container virtual machine.

   Typical use:

     let helpers = Vm.Helper.create () in
     let program = Femto_ebpf.Asm.assemble source in
     match Vm.load ~helpers ~regions program with
     | Error fault -> ...
     | Ok vm -> Vm.run vm ~args:[| ctx_ptr |]

   An instance carries one of three execution tiers:

   - Decoded:  the pre-decoded defensive interpreter loop.
   - Trimmed:  the analyzer-gated interpreter fast path (granted only by
               [Femto_analysis.Analysis.load], which owns the proofs).
   - Compiled: the closure-threaded tier — the default for verified
               programs.  With analyzer proofs it additionally fuses
               superinstructions and drops proven stack checks,
               mirroring the trimmed loop's trust model.
   - Ir:       the superblock tier — one specialized closure per
               optimized IR block ([Femto_analysis.Ir]/[Passes] lift and
               rewrite the program; [Compile.compile_ir] emits it).
               Granted only by [Femto_analysis.Analysis.load], which owns
               the IR; requesting it without an IR degrades to Compiled.

   Whatever the tier, isolation semantics, fault identity and statistics
   are bit-identical; the differential test suite pins this. *)

module Fault = Fault
module Region = Region
module Mem = Mem
module Helper = Helper
module Config = Config
module Verifier = Verifier
module Interp = Interp
module Compile = Compile
module Ir = Ir
module Obs = Femto_obs.Obs
module Otrace = Femto_obs.Trace

type tier = Decoded | Trimmed | Compiled | Ir

let tier_name = function
  | Decoded -> "decoded"
  | Trimmed -> "trimmed"
  | Compiled -> "compiled"
  | Ir -> "ir"

let tier_of_name = function
  | "decoded" -> Some Decoded
  | "trimmed" -> Some Trimmed
  | "compiled" -> Some Compiled
  | "ir" -> Some Ir
  | _ -> None

(* Everything needed to spawn further instances without redoing verify /
   analyze / compile: the program, its shared pre-decoded view, the
   analyzer's proofs, and the compiled artifact.  All fields are
   immutable and shared by every instance spawned from the image. *)
type image = {
  i_program : Femto_ebpf.Program.t;
  i_kinds : Femto_ebpf.Insn.kind array;
  i_config : Config.t;
  i_cycle_cost : (Femto_ebpf.Insn.kind -> int) option;
  i_helpers : Helper.t;
  i_tier : tier;
  i_proofs : bool array option;
  i_code : Compile.code option;
  i_proven : int;
}

and t = {
  interp : Interp.t;
  compiled : Compile.t option;
  tier : tier;
  proven : int; (* analyzer-proven accesses engaged by this instance *)
  mutable image : image option;
      (* filled for verified instances; the spawn template *)
}

let emit_tier t =
  Obs.event (fun () ->
      Otrace.Tier_selected
        {
          tier = tier_name t.tier;
          fused =
            (match t.compiled with
            | Some c -> Compile.fused_count c
            | None -> 0);
          proven = t.proven;
        })

(* Shared constructor: the caller certifies [program] already passed
   pre-flight verification.  [proofs] are the analyzer's per-pc facts;
   without them the Trimmed tier has nothing to trim and degrades to
   Decoded, and the Compiled tier keeps every defensive check.  [fuse]
   defaults to fusing only proof-bearing instances, mirroring the
   trust boundary: superinstructions ride with the analyzer's dividend
   unless explicitly requested. *)
let make_verified ~config ~cycle_cost ~tier ~fuse ~proofs ~ir ~helpers ~regions
    program =
  let create ?fastpath () =
    match cycle_cost with
    | Some cycle_cost ->
        Interp.create ~config ~cycle_cost ?fastpath ~helpers ~regions program
    | None -> Interp.create ~config ?fastpath ~helpers ~regions program
  in
  let compiled_instance ~tier =
    let mode =
      match proofs with Some p -> Compile.Proven p | None -> Compile.Checked
    in
    let fuse = match fuse with Some f -> f | None -> proofs <> None in
    let interp = create () in
    let compiled = Compile.compile ~fuse ~mode interp in
    {
      interp;
      compiled = Some compiled;
      tier;
      proven = Compile.proven_count compiled;
      image = None;
    }
  in
  let t =
    match (tier, proofs) with
    | Decoded, _ | Trimmed, None ->
        {
          interp = create ();
          compiled = None;
          tier = Decoded;
          proven = 0;
          image = None;
        }
    | Trimmed, Some proven_stack ->
        {
          interp = create ~fastpath:{ Interp.proven_stack } ();
          compiled = None;
          tier = Trimmed;
          proven =
            Array.fold_left (fun n b -> if b then n + 1 else n) 0 proven_stack;
          image = None;
        }
    | Compiled, _ -> compiled_instance ~tier:Compiled
    | Ir, _ -> (
        match ir with
        | None ->
            (* only [Femto_analysis.Analysis.load] owns an IR; degrade
               like Trimmed-without-proofs does, but to the strongest
               tier that needs no analyzer artifact *)
            compiled_instance ~tier:Compiled
        | Some irp ->
            let mode =
              match proofs with
              | Some p -> Compile.Proven p
              | None -> Compile.Checked
            in
            let interp = create () in
            let compiled = Compile.compile_ir ~mode ~ir:irp interp in
            {
              interp;
              compiled = Some compiled;
              tier = Ir;
              proven = Compile.proven_count compiled;
              image = None;
            })
  in
  (* Every verified instance doubles as a spawn template: the image is
     just shared references to what was computed above, so capturing it
     is free. *)
  t.image <-
    Some
      {
        i_program = program;
        i_kinds = Interp.kinds t.interp;
        i_config = config;
        i_cycle_cost = cycle_cost;
        i_helpers = helpers;
        i_tier = t.tier;
        i_proofs = proofs;
        i_code = Option.map Compile.shared t.compiled;
        i_proven = t.proven;
      };
  emit_tier t;
  t

(* [load] verifies then compiles (or pre-decodes, per [tier]); a program
   that fails pre-flight checks is never instantiated. *)
let load ?(config = Config.default) ?cycle_cost ?(tier = Compiled) ?fuse
    ~helpers ~regions program =
  match Verifier.verify ~helpers config program with
  | Error fault -> Error fault
  | Ok (_ : Verifier.ok) ->
      Ok
        (make_verified ~config ~cycle_cost ~tier ~fuse ~proofs:None ~ir:None
           ~helpers ~regions program)

let load_analyzed ?(config = Config.default) ?cycle_cost ?(tier = Compiled)
    ?fuse ?proofs ?ir ~helpers ~regions program =
  make_verified ~config ~cycle_cost ~tier ~fuse ~proofs ~ir ~helpers ~regions
    program

(* [load_unverified] skips pre-flight checks; used by tests and benchmarks
   to demonstrate that the interpreter's defensive checks still hold.
   Always decoded: the compiled tier assumes verifier invariants. *)
let load_unverified ?(config = Config.default) ?cycle_cost ~helpers ~regions
    program =
  let interp =
    match cycle_cost with
    | Some cycle_cost ->
        Interp.create ~config ~cycle_cost ~helpers ~regions program
    | None -> Interp.create ~config ~helpers ~regions program
  in
  { interp; compiled = None; tier = Decoded; proven = 0; image = None }

let run ?(args = [||]) t =
  match t.compiled with
  | Some c -> Compile.run ~args c
  | None -> Interp.run ~args t.interp

let stats t = Interp.stats t.interp
let mem t = Interp.mem t.interp
let tier t = t.tier
let compiled t = t.compiled
let interp t = t.interp

let fastpath_active t = t.tier <> Decoded && (t.tier = Trimmed || t.proven > 0)
let proven_count t = t.proven

let fused_count t =
  match t.compiled with Some c -> Compile.fused_count c | None -> 0

(* The register file of whichever tier executes; for the compiled tier
   the interpreter's array doubles as the snapshot buffer. *)
let registers t =
  match t.compiled with
  | Some c ->
      let regs = Interp.registers t.interp in
      Compile.copy_registers c regs;
      regs
  | None -> Interp.registers t.interp

let ram_bytes t =
  Interp.ram_bytes t.interp
  + (match t.compiled with Some c -> Compile.ram_bytes c | None -> 0)

(* ------------------------------------------------------------------ *)
(* Image / instance split.                                            *)

let image_of t =
  match t.image with
  | Some img -> img
  | None -> invalid_arg "Vm.image_of: instance was loaded unverified"

let image_tier img = img.i_tier
let image_program img = img.i_program
let image_proven img = img.i_proven

(* [spawn] is the cheap path: no verification, no analysis, no decode
   (the kinds array is shared), no compilation (the closure graph is
   shared via [Compile.instantiate]).  The instance privately owns its
   stack buffer, register file, stats, memory-region table and inline
   cache slots — nothing else. *)
let spawn ?(regions = []) img =
  let fastpath =
    match (img.i_tier, img.i_proofs) with
    | Trimmed, Some proven_stack -> Some { Interp.proven_stack }
    | _ -> None
  in
  let interp =
    match img.i_cycle_cost with
    | Some cycle_cost ->
        Interp.create ~config:img.i_config ~cycle_cost ?fastpath
          ~kinds:img.i_kinds ~helpers:img.i_helpers ~regions img.i_program
    | None ->
        Interp.create ~config:img.i_config ?fastpath ~kinds:img.i_kinds
          ~helpers:img.i_helpers ~regions img.i_program
  in
  let compiled =
    match img.i_code with
    | Some code -> Some (Compile.instantiate code interp)
    | None -> None
  in
  let t =
    {
      interp;
      compiled;
      tier = img.i_tier;
      proven = img.i_proven;
      image = Some img;
    }
  in
  emit_tier t;
  t
