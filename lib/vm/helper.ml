(* Helper (system call) registry.

   Containers reach OS facilities only through helpers invoked with the
   eBPF [call] instruction — the paper's "simple containerization"
   interface.  A helper receives the five argument registers r1..r5 and the
   container's memory map (so pointer arguments are checked against the
   same allow-list as VM loads/stores), and returns the new r0. *)

type args = { a1 : int64; a2 : int64; a3 : int64; a4 : int64; a5 : int64 }

type fn = Mem.t -> args -> (int64, string) result

type entry = {
  id : int;
  name : string;
  cost_cycles : int; (* cycle-model cost charged per invocation *)
  arity : int option; (* argument registers r1..rN consumed, when declared *)
  fn : fn;
}

type t = {
  by_id : (int, entry) Hashtbl.t;
  by_name : (string, entry) Hashtbl.t;
}

let create () = { by_id = Hashtbl.create 16; by_name = Hashtbl.create 16 }

let register t ?(cost_cycles = 50) ?arity ~id ~name fn =
  if Hashtbl.mem t.by_id id then
    invalid_arg (Printf.sprintf "helper id %d already registered" id);
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "helper name %s already registered" name);
  (match arity with
  | Some n when n < 0 || n > 5 ->
      invalid_arg (Printf.sprintf "helper %s arity %d outside r1..r5" name n)
  | _ -> ());
  let entry = { id; name; cost_cycles; arity; fn } in
  Hashtbl.replace t.by_id id entry;
  Hashtbl.replace t.by_name name entry

let find t id = Hashtbl.find_opt t.by_id id
let find_by_name t name = Hashtbl.find_opt t.by_name name
let id_of_name t name = Option.map (fun e -> e.id) (find_by_name t name)
let name_of_id t id = Option.map (fun e -> e.name) (find t id)
let mem t id = Hashtbl.mem t.by_id id
let count t = Hashtbl.length t.by_id

(* Assembler plug: resolves `call <name>` mnemonics. *)
let asm_resolver t name = id_of_name t name

let iter t f =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_id [] in
  List.iter f (List.sort (fun a b -> compare a.id b.id) entries)
