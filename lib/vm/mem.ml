(* Runtime memory-access checking against a container's allow-list.

   Every load/store computed by the VM resolves its (possibly
   register-computed) address against the list; an access that no region
   permits aborts execution — Figure 4 of the paper. *)

type t = { mutable regions : Region.t array }

let create regions = { regions = Array.of_list regions }
let regions t = Array.to_list t.regions
let raw_regions t = t.regions
let add_region t region = t.regions <- Array.append t.regions [| region |]

let find t ~addr ~size ~write =
  let n = Array.length t.regions in
  let rec scan i =
    if i >= n then None
    else
      let region = t.regions.(i) in
      let allowed =
        if write then Region.writable region.Region.perm
        else Region.readable region.Region.perm
      in
      if allowed && Region.contains region addr size then Some region
      else scan (i + 1)
  in
  scan 0

(* Loads zero-extend to 64 bits, as eBPF LDX does. *)
let load_raw data off size =
  match size with
  | 1 -> Int64.of_int (Bytes.get_uint8 data off)
  | 2 -> Int64.of_int (Bytes.get_uint16_le data off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le data off)) 0xFFFF_FFFFL
  | 8 -> Bytes.get_int64_le data off
  | _ -> invalid_arg "Mem.load_raw: size"

let store_raw data off size value =
  match size with
  | 1 -> Bytes.set_uint8 data off (Int64.to_int (Int64.logand value 0xFFL))
  | 2 -> Bytes.set_uint16_le data off (Int64.to_int (Int64.logand value 0xFFFFL))
  | 4 -> Bytes.set_int32_le data off (Int64.to_int32 value)
  | 8 -> Bytes.set_int64_le data off value
  | _ -> invalid_arg "Mem.store_raw: size"

let load t ~addr ~size =
  match find t ~addr ~size ~write:false with
  | Some region -> Ok (load_raw region.Region.data (Region.offset_of region addr) size)
  | None -> Error ()

let store t ~addr ~size value =
  match find t ~addr ~size ~write:true with
  | Some region ->
      store_raw region.Region.data (Region.offset_of region addr) size value;
      Ok ()
  | None -> Error ()

(* Helper-facing accessors: helpers receive guest pointers as int64 and must
   obey the same allow-list as VM instructions. *)

let load_bytes t ~addr ~len =
  if len = 0 then Ok Bytes.empty
  else
    match find t ~addr ~size:len ~write:false with
    | Some region ->
        Ok (Bytes.sub region.Region.data (Region.offset_of region addr) len)
    | None -> Error ()

let store_bytes t ~addr src =
  let len = Bytes.length src in
  if len = 0 then Ok ()
  else
    match find t ~addr ~size:len ~write:true with
    | Some region ->
        Bytes.blit src 0 region.Region.data (Region.offset_of region addr) len;
        Ok ()
    | None -> Error ()
