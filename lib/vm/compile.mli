(** Closure-threaded execution tier.

    [compile] translates a pre-decoded program into an array of mutually
    tail-calling closures (direct-threaded code), specialized on each
    instruction's static operands, with optional superinstruction fusion
    of hot pairs.  Isolation semantics match the interpreter bit-for-bit:
    [Checked] mode keeps the allow-list and both execution budgets;
    [Proven] mode consumes the analyzer's per-pc facts exactly like the
    trimmed interpreter loop, compiling proven stack accesses to direct
    byte-buffer access and compiling the budget compares out.

    The instance is a warm pool entry: registers live in an unboxed byte
    buffer, stores maintain a dirty high-water mark over the stack, and
    [reset] zeroes only what the previous run touched — so [fire] on an
    allocation-free program performs zero minor-heap allocation. *)

type t

type code
(** The immutable compiled artifact: generated closures plus compile-time
    metadata.  All run-time mutable state (registers, stack, stats, dirty
    window, region inline caches) lives in the instance, so one [code]
    value can back any number of instances — the container image/instance
    split shares it via [shared]/[instantiate]. *)

type mode =
  | Checked  (** full defensive checks, like [Interp.exec_checked] *)
  | Proven of bool array
      (** analyzer facts: [p.(pc)] marks a proven in-frame stack access;
          granting them also asserts DAG-within-budgets eligibility *)

exception Vm_fault of Fault.t

val compile : ?fuse:bool -> mode:mode -> Interp.t -> t
(** Build the closure array from [interp]'s pre-decoded program.  The
    instance shares the interpreter's memory map, stack buffer and stats
    record.  [fuse] (default false) enables the superinstruction pass.
    Helper ids are resolved against the table once, at compile time. *)

val compile_ir : mode:mode -> ir:Ir.program -> Interp.t -> t
(** Superblock backend: one specialized closure per IR block, threaded by
    a block-id trampoline.  Instruction/cycle accounting is batched at
    fault-capable steps and block exits; in [Checked] mode a per-block
    headroom guard falls back to the per-instruction threaded code when a
    budget could expire mid-block, so budget faults (payload and partial
    stats) stay bit-for-bit identical to the decoded interpreter.
    Proof-elided stack accesses compile to direct byte-buffer access
    behind a residual frame-bounds guard; hoisted allow-list accesses use
    a per-site, per-instance region inline cache, enabled when the
    instance's region snapshot is pairwise disjoint (the only case where
    caching is sound). *)

val shared : t -> code
(** The shared compiled artifact backing [t]. *)

val instantiate : code -> Interp.t -> t
(** Bind shared compiled code to a fresh interpreter instance.  Performs
    no verification, analysis or compilation — only the per-instance run
    state (register file, inline-cache slots, region snapshot) is
    allocated.  The interpreter must have been created from the same
    program and config the code was compiled from. *)

val cache_sites : code -> int
(** Region-inline-cache slots each instance provides (IR tier only). *)

val run : ?args:int64 array -> t -> (int64, Fault.t) result
(** Execute with [Interp.run]'s exact observability envelope. *)

val fire : args:int64 array -> t -> bool
(** Steady-state dispatch entry for the engine's warm pool: no result
    value is constructed; returns [false] when the run faulted.  Zero
    minor-heap allocation on success for allocation-free programs. *)

val result : t -> int64
(** r0 as left by the most recent execution. *)

val fused_count : t -> int
(** Superinstructions installed by the fusion pass. *)

val proven_count : t -> int
(** Instructions compiled against analyzer proofs. *)

val ir_blocks_count : t -> int
(** Superblocks compiled by the IR backend (0 for the threaded tier). *)

val elided_count : t -> int
(** IR memory checks elided against analyzer proofs. *)

val hoisted_count : t -> int
(** IR allow-list scans compiled behind a region inline cache. *)

val compile_ns : t -> float
val runs : t -> int

val registers : t -> int64 array
(** Fresh snapshot of the 11-register file. *)

val copy_registers : t -> int64 array -> unit
(** Copy the register file into [dst] (length >= 11) without allocating. *)

val stack_bytes : t -> bytes
(** The shared stack buffer (test-facing). *)

val dirty_window : t -> int * int
(** Current dirty stack window [(lo, hi)); empty when [lo >= hi]. *)

val ram_bytes : t -> int
(** Additional state owned by this tier: register file plus the closure
    table (shared when the instance was spawned from an image). *)

val instance_ram_bytes : t -> int
(** Only the private slice: register file, inline-cache slots and state
    record — what [instantiate] allocates beyond the shared [code]. *)
