(** Helper (system call) registry.

    Containers reach OS facilities only through helpers invoked with the
    eBPF [call] instruction.  A helper receives the five argument
    registers and the container's memory map, so pointer arguments are
    checked against the same allow-list as VM loads and stores. *)

type args = { a1 : int64; a2 : int64; a3 : int64; a4 : int64; a5 : int64 }
(** The argument registers r1..r5 at the call site. *)

type fn = Mem.t -> args -> (int64, string) result
(** A helper body: returns the new r0, or an error message that faults
    the calling container ({!Fault.Helper_error}). *)

type entry = {
  id : int;
  name : string;
  cost_cycles : int;  (** cycle-model cost charged per invocation *)
  arity : int option;
      (** number of argument registers r1..rN the helper consumes, when
          declared; used by the static analyzer's call-signature check *)
  fn : fn;
}

type t

val create : unit -> t

val register :
  t -> ?cost_cycles:int -> ?arity:int -> id:int -> name:string -> fn -> unit
(** Adds a helper; raises [Invalid_argument] on duplicate id or name, or
    an [arity] outside 0..5. *)

val find : t -> int -> entry option
val find_by_name : t -> string -> entry option
val id_of_name : t -> string -> int option
val name_of_id : t -> int -> string option
val mem : t -> int -> bool
val count : t -> int

val asm_resolver : t -> string -> int option
(** Plug for {!Femto_ebpf.Asm.assemble}'s [~helpers] argument. *)

val iter : t -> (entry -> unit) -> unit
(** Iterate in increasing id order. *)
