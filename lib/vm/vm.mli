(** Facade for the Femto-Container virtual machine.

    {[
      let helpers = Vm.Helper.create () in
      let program = Femto_ebpf.Asm.assemble source in
      match Vm.load ~helpers ~regions program with
      | Error fault -> ...
      | Ok vm -> Vm.run vm ~args:[| ctx_ptr |]
    ]}

    An instance carries one of four execution tiers — the decoded
    defensive interpreter, the analyzer-gated trimmed interpreter, the
    closure-threaded compiled tier (the default for verified programs),
    or the superblock IR tier (one specialized closure per optimized IR
    block, granted by {!Femto_analysis.Analysis.load}).  Results, fault
    identity and statistics are bit-identical across tiers. *)

module Fault = Fault
module Region = Region
module Mem = Mem
module Helper = Helper
module Config = Config
module Verifier = Verifier
module Interp = Interp
module Compile = Compile
module Ir = Ir

type tier = Decoded | Trimmed | Compiled | Ir

val tier_name : tier -> string
val tier_of_name : string -> tier option

type t

val load :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  ?tier:tier ->
  ?fuse:bool ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  (t, Fault.t) result
(** Verify then instantiate; a program that fails pre-flight checks is
    never instantiated.  [cycle_cost] plugs a platform cycle model in.
    [tier] defaults to [Compiled]; requesting [Trimmed] here degrades to
    [Decoded] because only {!Femto_analysis.Analysis.load} owns the
    proofs the trimmed loop consumes.  [fuse] overrides the fusion
    default (fuse only proof-bearing instances). *)

val load_analyzed :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  ?tier:tier ->
  ?fuse:bool ->
  ?proofs:bool array ->
  ?ir:Ir.program ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  t
(** For {!Femto_analysis.Analysis.load}: instantiate an
    already-verified program, engaging proof-bearing tiers when
    [proofs] (the analyzer's per-pc facts) are present.  The [Ir] tier
    additionally needs the lifted-and-optimized [ir]; without it the
    request degrades to [Compiled]. *)

val load_unverified :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  t
(** Skip pre-flight checks (tests/benchmarks only): always decoded, the
    interpreter's defensive checks still contain any fault. *)

val run : ?args:int64 array -> t -> (int64, Fault.t) result
(** Execute from slot 0 with r1..r5 preloaded from [args]; returns r0. *)

val stats : t -> Interp.stats
val mem : t -> Mem.t
val registers : t -> int64 array

val tier : t -> tier
val compiled : t -> Compile.t option
val interp : t -> Interp.t

val fastpath_active : t -> bool
(** True when analyzer proofs are engaged (trimmed loop, or compiled
    with proven accesses). *)

val proven_count : t -> int
val fused_count : t -> int

val ram_bytes : t -> int
(** Per-instance RAM (paper Table 3 sense), including the compiled
    tier's closure table when present. *)

(** {2 Image / instance split}

    A verified instance doubles as a spawn template: {!image_of} captures
    the whole immutable graph — program, shared pre-decoded instruction
    views, analyzer proofs, compiled closure artifact — and {!spawn}
    binds it to fresh private run state (stack, registers, stats, memory
    map, inline-cache slots) without re-verifying, re-analyzing,
    re-decoding or re-compiling anything. *)

type image

val image_of : t -> image
(** The spawn template behind a verified instance (shared: calling this
    twice, or on a spawned sibling, returns the same image).
    @raise Invalid_argument on a {!load_unverified} instance. *)

val spawn : ?regions:Region.t list -> image -> t
(** Instantiate the image over a fresh memory map ([regions], plus the
    private stack the interpreter always adds).  O(private state); the
    shared graph is untouched. *)

val image_tier : image -> tier
val image_program : image -> Femto_ebpf.Program.t
val image_proven : image -> int
