(** Faults a Femto-Container VM can raise.

    Every fault aborts the current execution only; the host OS and other
    containers are unaffected — the paper's fault-isolation property. *)

type t =
  | Invalid_opcode of { pc : int; opcode : int }
  | Invalid_register of { pc : int; reg : int }
  | Readonly_register of { pc : int }  (** write to r10 *)
  | Bad_jump of { pc : int; target : int }
  | Jump_to_lddw_tail of { pc : int; target : int }
  | Truncated_lddw of { pc : int }
  | Malformed_lddw_tail of { pc : int }
  | Division_by_zero of { pc : int }
  | Memory_access of { pc : int; addr : int64; size : int; write : bool }
      (** access outside the allow-list *)
  | Unknown_helper of { pc : int; id : int }
  | Helper_error of { pc : int; id : int; message : string }
  | Instruction_budget_exhausted of { executed : int }
  | Branch_budget_exhausted of { taken : int }
  | Fall_off_end of { pc : int }
  | Program_too_long of { len : int; max : int }
  | Empty_program
  | Nonzero_field of { pc : int; field : string }
      (** reserved instruction field was not zero (pre-flight) *)
  | Bad_end_instruction of { pc : int }
      (** last instruction is not [exit] or [ja] (pre-flight) *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Stable machine-readable discriminator (snake_case constructor name)
    for trace events and metric labels. *)
val kind : t -> string
