(* The optimized Femto-Container interpreter.

   The program is pre-decoded into an array of typed instruction views at
   load time (the moral equivalent of the paper's computed jumptable: one
   dispatch on a dense constructor tag per instruction).  The interpreter
   trusts the pre-flight verifier for structural properties (opcodes,
   registers, jump targets) and performs the defensive runtime checks the
   verifier cannot do statically: memory accesses against the allow-list,
   division by zero, and the finite-execution budgets. *)

open Femto_ebpf
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* Process-wide VM metrics, aggregated across all instances.  Handles
   are resolved once; per-run updates are plain mutable stores. *)
let m_runs = Obs.counter "vm.runs"
let m_faults = Obs.counter "vm.faults"
let m_insns = Obs.counter "vm.insns"
let m_branches = Obs.counter "vm.branches"
let m_helper_calls = Obs.counter "vm.helper_calls"
let m_cycles = Obs.counter "vm.cycles"
let m_run_ns = Obs.histogram "vm.run_ns"

type stats = {
  mutable insns_executed : int;
  mutable branches_taken : int;
  mutable helper_calls : int;
  mutable cycles : int; (* accumulated platform cycle-model cost *)
}

let fresh_stats () =
  { insns_executed = 0; branches_taken = 0; helper_calls = 0; cycles = 0 }

(* Static proofs handed over by the analyzer: [proven_stack.(pc)] means
   the memory access at [pc] is a stack access whose offset interval lies
   inside the frame on every path.  Granting a fastpath also asserts the
   program is a verified DAG within both static budgets, so the trimmed
   loop can drop the budget counters entirely. *)
type fastpath = { proven_stack : bool array }

type t = {
  program : Program.t;
  kinds : Insn.kind array;
  config : Config.t;
  mem : Mem.t;
  stack_data : bytes;
  helpers : Helper.t;
  regs : int64 array;
  cycle_cost : Insn.kind -> int;
  stats : stats;
  fastpath : fastpath option;
}

let no_cost (_ : Insn.kind) = 0

(* [create] pre-decodes the program.  The caller is expected to have run
   [Verifier.verify] first; [run] still never crashes the host on an
   unverified program — it faults instead.  [fastpath] must only be
   passed for programs the static analyzer proved eligible.  [kinds], if
   given, must be the pre-decoded view of [program] — image spawns pass
   the shared array so instances skip the per-instance decode. *)
let create ?(config = Config.default) ?(cycle_cost = no_cost) ?fastpath ?kinds
    ~helpers ~regions program =
  let stack_data = Bytes.make config.Config.stack_size '\000' in
  let stack =
    Region.make ~name:"stack" ~vaddr:config.Config.stack_vaddr
      ~perm:Region.Read_write stack_data
  in
  let kinds =
    match kinds with
    | Some k -> k
    | None -> Array.map Insn.kind (Program.insns program)
  in
  {
    program;
    kinds;
    config;
    mem = Mem.create (stack :: regions);
    stack_data;
    helpers;
    regs = Array.make 11 0L;
    cycle_cost;
    stats = fresh_stats ();
    fastpath;
  }

let mem t = t.mem
let stats t = t.stats
let registers t = t.regs
let fastpath_active t = t.fastpath <> None

(* Structural accessors for the closure-threaded compiler (Compile),
   which shares this instance's memory map, stack buffer and stats
   record so both tiers observe identical state. *)
let program t = t.program
let kinds t = t.kinds
let config t = t.config
let helpers t = t.helpers
let stack_data t = t.stack_data
let cycle_cost t = t.cycle_cost

(* Per-instance RAM in the paper's Table 3 sense: the state one container
   instance owns — VM stack, register file, statistics, and its memory
   region table — excluding the shared bytecode and helper tables.
   Computed from the actual buffer sizes of this instance. *)
let ram_bytes t =
  let word = Sys.word_size / 8 in
  let stack = Bytes.length t.stack_data in
  let regs = 11 * 8 in
  let stats_struct = 5 * word in
  let region_table =
    List.fold_left
      (fun acc (_ : Region.t) -> acc + (6 * word))
      (2 * word) (Mem.regions t.mem)
  in
  stack + regs + stats_struct + region_table

let reset t =
  Array.fill t.regs 0 11 0L;
  Bytes.fill t.stack_data 0 (Bytes.length t.stack_data) '\000';
  t.regs.(10) <-
    Int64.add t.config.Config.stack_vaddr
      (Int64.of_int t.config.Config.stack_size)

let mask32 v = Int64.logand v 0xFFFF_FFFFL
let low32 v = Int64.to_int32 v

let alu64 pc op (dst : int64) (src : int64) =
  let open Int64 in
  match (op : Opcode.alu_op) with
  | Opcode.Add -> Ok (add dst src)
  | Opcode.Sub -> Ok (sub dst src)
  | Opcode.Mul -> Ok (mul dst src)
  | Opcode.Div ->
      if equal src 0L then Error (Fault.Division_by_zero { pc })
      else Ok (unsigned_div dst src)
  | Opcode.Mod ->
      if equal src 0L then Error (Fault.Division_by_zero { pc })
      else Ok (unsigned_rem dst src)
  | Opcode.Or -> Ok (logor dst src)
  | Opcode.And -> Ok (logand dst src)
  | Opcode.Xor -> Ok (logxor dst src)
  | Opcode.Lsh -> Ok (shift_left dst (to_int (logand src 63L)))
  | Opcode.Rsh -> Ok (shift_right_logical dst (to_int (logand src 63L)))
  | Opcode.Arsh -> Ok (shift_right dst (to_int (logand src 63L)))
  | Opcode.Neg -> Ok (neg dst)
  | Opcode.Mov -> Ok src

let alu32 pc op (dst : int64) (src : int64) =
  let open Int32 in
  let d = low32 dst and s = low32 src in
  let ok v = Ok (mask32 (Int64.of_int32 v)) in
  match (op : Opcode.alu_op) with
  | Opcode.Add -> ok (add d s)
  | Opcode.Sub -> ok (sub d s)
  | Opcode.Mul -> ok (mul d s)
  | Opcode.Div ->
      if equal s 0l then Error (Fault.Division_by_zero { pc })
      else ok (unsigned_div d s)
  | Opcode.Mod ->
      if equal s 0l then Error (Fault.Division_by_zero { pc })
      else ok (unsigned_rem d s)
  | Opcode.Or -> ok (logor d s)
  | Opcode.And -> ok (logand d s)
  | Opcode.Xor -> ok (logxor d s)
  | Opcode.Lsh -> ok (shift_left d (Int64.to_int (Int64.logand src 31L)))
  | Opcode.Rsh -> ok (shift_right_logical d (Int64.to_int (Int64.logand src 31L)))
  | Opcode.Arsh -> ok (shift_right d (Int64.to_int (Int64.logand src 31L)))
  | Opcode.Neg -> ok (neg d)
  | Opcode.Mov -> ok s

(* BPF_END byte-order conversion.  The host is little endian, so [Le]
   truncates and [Be] byte-swaps then truncates. *)
let byte_swap pc endianness width (v : int64) =
  let swap16 v =
    let v = Int64.to_int v in
    Int64.of_int (((v land 0xff) lsl 8) lor ((v lsr 8) land 0xff))
  in
  let swap32 v =
    let b i = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
    Int64.of_int ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)
  in
  let swap64 v =
    let b i = Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL in
    let acc = ref 0L in
    for i = 0 to 7 do
      acc := Int64.logor (Int64.shift_left !acc 8) (b i)
    done;
    !acc
  in
  match (endianness, width) with
  | Opcode.Le, 16l -> Ok (Int64.logand v 0xFFFFL)
  | Opcode.Le, 32l -> Ok (Int64.logand v 0xFFFF_FFFFL)
  | Opcode.Le, 64l -> Ok v
  | Opcode.Be, 16l -> Ok (swap16 (Int64.logand v 0xFFFFL))
  | Opcode.Be, 32l -> Ok (swap32 (Int64.logand v 0xFFFF_FFFFL))
  | Opcode.Be, 64l -> Ok (swap64 v)
  | _ -> Error (Fault.Nonzero_field { pc; field = "end width" })

let condition cond is64 (dst : int64) (src : int64) =
  let open Int64 in
  if is64 then
    match (cond : Opcode.jmp_cond) with
    | Opcode.Jeq -> equal dst src
    | Opcode.Jne -> not (equal dst src)
    | Opcode.Jgt -> unsigned_compare dst src > 0
    | Opcode.Jge -> unsigned_compare dst src >= 0
    | Opcode.Jlt -> unsigned_compare dst src < 0
    | Opcode.Jle -> unsigned_compare dst src <= 0
    | Opcode.Jsgt -> compare dst src > 0
    | Opcode.Jsge -> compare dst src >= 0
    | Opcode.Jslt -> compare dst src < 0
    | Opcode.Jsle -> compare dst src <= 0
    | Opcode.Jset -> not (equal (logand dst src) 0L)
  else
    let d = low32 dst and s = low32 src in
    match (cond : Opcode.jmp_cond) with
    | Opcode.Jeq -> Int32.equal d s
    | Opcode.Jne -> not (Int32.equal d s)
    | Opcode.Jgt -> Int32.unsigned_compare d s > 0
    | Opcode.Jge -> Int32.unsigned_compare d s >= 0
    | Opcode.Jlt -> Int32.unsigned_compare d s < 0
    | Opcode.Jle -> Int32.unsigned_compare d s <= 0
    | Opcode.Jsgt -> Int32.compare d s > 0
    | Opcode.Jsge -> Int32.compare d s >= 0
    | Opcode.Jslt -> Int32.compare d s < 0
    | Opcode.Jsle -> Int32.compare d s <= 0
    | Opcode.Jset -> not (Int32.equal (Int32.logand d s) 0l)

exception Abort of Fault.t

(* [exec_checked t ~args] executes the program from slot 0 with r1..r5
   preloaded from [args] and returns r0.  The container context pointer of
   the paper arrives in r1.  This is the fully defended path: budget
   counters compared per instruction, every memory access resolved through
   the allow-list. *)
let exec_checked ~args t =
  reset t;
  Array.iteri (fun i v -> if i < 5 then t.regs.(i + 1) <- v) args;
  let regs = t.regs in
  let kinds = t.kinds in
  let insns = Program.insns t.program in
  let len = Array.length kinds in
  let stats = t.stats in
  stats.insns_executed <- 0;
  stats.branches_taken <- 0;
  stats.helper_calls <- 0;
  stats.cycles <- 0;
  let dynamic_limit = Config.dynamic_instruction_limit t.config in
  let fault f = raise (Abort f) in
  let sext_imm imm = Int64.of_int32 imm in
  try
    let pc = ref 0 in
    let result = ref None in
    while !result = None do
      if !pc < 0 || !pc >= len then fault (Fault.Fall_off_end { pc = !pc });
      let insn = Array.unsafe_get insns !pc in
      let kind = Array.unsafe_get kinds !pc in
      (* Defensive register-range check: the verifier guarantees this for
         verified programs; it keeps even unverified garbage contained. *)
      if insn.Insn.dst > 10 then
        fault (Fault.Invalid_register { pc = !pc; reg = insn.Insn.dst });
      if insn.Insn.src > 10 then
        fault (Fault.Invalid_register { pc = !pc; reg = insn.Insn.src });
      stats.insns_executed <- stats.insns_executed + 1;
      if stats.insns_executed > dynamic_limit then
        fault (Fault.Instruction_budget_exhausted { executed = stats.insns_executed });
      stats.cycles <- stats.cycles + t.cycle_cost kind;
      let next = ref (!pc + 1) in
      (match kind with
      | Insn.Alu (is64, op, source) -> (
          let src_value =
            match source with
            | Opcode.Src_imm -> sext_imm insn.Insn.imm
            | Opcode.Src_reg -> regs.(insn.Insn.src)
          in
          let f = if is64 then alu64 else alu32 in
          match f !pc op regs.(insn.Insn.dst) src_value with
          | Ok v -> regs.(insn.Insn.dst) <- v
          | Error e -> fault e)
      | Insn.Load size -> (
          let addr = Int64.add regs.(insn.Insn.src) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          match Mem.load t.mem ~addr ~size:nbytes with
          | Ok v -> regs.(insn.Insn.dst) <- v
          | Error () ->
              fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = false }))
      | Insn.Store_imm size -> (
          let addr = Int64.add regs.(insn.Insn.dst) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          match Mem.store t.mem ~addr ~size:nbytes (sext_imm insn.Insn.imm) with
          | Ok () -> ()
          | Error () ->
              fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = true }))
      | Insn.Store_reg size -> (
          let addr = Int64.add regs.(insn.Insn.dst) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          match Mem.store t.mem ~addr ~size:nbytes regs.(insn.Insn.src) with
          | Ok () -> ()
          | Error () ->
              fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = true }))
      | Insn.Lddw_head ->
          if !pc + 1 >= len then fault (Fault.Truncated_lddw { pc = !pc })
          else begin
            let tail = insns.(!pc + 1) in
            regs.(insn.Insn.dst) <- Insn.lddw_imm ~head:insn ~tail;
            next := !pc + 2
          end
      | Insn.Lddw_tail ->
          (* Reachable only in unverified programs. *)
          fault (Fault.Invalid_opcode { pc = !pc; opcode = 0 })
      | Insn.End endianness -> (
          match byte_swap !pc endianness insn.Insn.imm regs.(insn.Insn.dst) with
          | Ok v -> regs.(insn.Insn.dst) <- v
          | Error e -> fault e)
      | Insn.Ja ->
          stats.branches_taken <- stats.branches_taken + 1;
          if stats.branches_taken > t.config.Config.max_branches then
            fault (Fault.Branch_budget_exhausted { taken = stats.branches_taken });
          next := !pc + 1 + insn.Insn.offset
      | Insn.Jcond (is64, cond, source) ->
          let src_value =
            match source with
            | Opcode.Src_imm -> sext_imm insn.Insn.imm
            | Opcode.Src_reg -> regs.(insn.Insn.src)
          in
          if condition cond is64 regs.(insn.Insn.dst) src_value then begin
            stats.branches_taken <- stats.branches_taken + 1;
            if stats.branches_taken > t.config.Config.max_branches then
              fault (Fault.Branch_budget_exhausted { taken = stats.branches_taken });
            next := !pc + 1 + insn.Insn.offset
          end
      | Insn.Call -> (
          let id = Int32.to_int insn.Insn.imm in
          match Helper.find t.helpers id with
          | None -> fault (Fault.Unknown_helper { pc = !pc; id })
          | Some entry -> (
              stats.helper_calls <- stats.helper_calls + 1;
              Obs.event (fun () ->
                  Otrace.Helper_call { id; name = entry.Helper.name });
              stats.cycles <- stats.cycles + entry.Helper.cost_cycles;
              let args =
                {
                  Helper.a1 = regs.(1);
                  a2 = regs.(2);
                  a3 = regs.(3);
                  a4 = regs.(4);
                  a5 = regs.(5);
                }
              in
              match entry.Helper.fn t.mem args with
              | Ok r0 -> regs.(0) <- r0
              | Error message ->
                  fault (Fault.Helper_error { pc = !pc; id; message })))
      | Insn.Exit -> result := Some regs.(0)
      | Insn.Invalid opcode -> fault (Fault.Invalid_opcode { pc = !pc; opcode }));
      (match !result with None -> pc := !next | Some _ -> ())
    done;
    match !result with Some r0 -> Ok r0 | None -> assert false
  with Abort f -> Error f

(* Direct little-endian stack accessors for statically proven accesses:
   no allow-list scan, no virtual-address translation beyond one
   subtraction. *)
let stack_load_direct data off nbytes =
  match nbytes with
  | 1 -> Int64.of_int (Bytes.get_uint8 data off)
  | 2 -> Int64.of_int (Bytes.get_uint16_le data off)
  | 4 -> mask32 (Int64.of_int32 (Bytes.get_int32_le data off))
  | _ -> Bytes.get_int64_le data off

let stack_store_direct data off nbytes v =
  match nbytes with
  | 1 -> Bytes.set_uint8 data off (Int64.to_int v land 0xff)
  | 2 -> Bytes.set_uint16_le data off (Int64.to_int v land 0xffff)
  | 4 -> Bytes.set_int32_le data off (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le data off v

(* The analyzer's fast-path dividend.  Preconditions (established by
   [Femto_analysis] before it grants a [fastpath]): the program passed
   pre-flight verification, its reachable CFG is a DAG whose length fits
   both static budgets — so every instruction executes at most once and
   neither budget can fire — and [proven_stack.(pc)] accesses are
   in-bounds stack accesses on every path.  Relative to [exec_checked]
   this loop drops the per-instruction budget comparisons, the defensive
   register-range checks, and resolves proven accesses directly against
   the stack buffer instead of scanning the region allow-list.  Stats and
   cycle accounting are kept so engine scheduling and observability see
   identical numbers. *)
let exec_trimmed fp ~args t =
  reset t;
  Array.iteri (fun i v -> if i < 5 then t.regs.(i + 1) <- v) args;
  let regs = t.regs in
  let kinds = t.kinds in
  let insns = Program.insns t.program in
  let len = Array.length kinds in
  let stats = t.stats in
  stats.insns_executed <- 0;
  stats.branches_taken <- 0;
  stats.helper_calls <- 0;
  stats.cycles <- 0;
  let proven = fp.proven_stack in
  let stack_base = t.config.Config.stack_vaddr in
  let stack_data = t.stack_data in
  let fault f = raise (Abort f) in
  let sext_imm imm = Int64.of_int32 imm in
  try
    let pc = ref 0 in
    let result = ref None in
    while !result = None do
      if !pc < 0 || !pc >= len then fault (Fault.Fall_off_end { pc = !pc });
      let insn = Array.unsafe_get insns !pc in
      let kind = Array.unsafe_get kinds !pc in
      stats.insns_executed <- stats.insns_executed + 1;
      stats.cycles <- stats.cycles + t.cycle_cost kind;
      let next = ref (!pc + 1) in
      (match kind with
      | Insn.Alu (is64, op, source) -> (
          let src_value =
            match source with
            | Opcode.Src_imm -> sext_imm insn.Insn.imm
            | Opcode.Src_reg -> regs.(insn.Insn.src)
          in
          let f = if is64 then alu64 else alu32 in
          match f !pc op regs.(insn.Insn.dst) src_value with
          | Ok v -> regs.(insn.Insn.dst) <- v
          | Error e -> fault e)
      | Insn.Load size ->
          let addr = Int64.add regs.(insn.Insn.src) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          if Array.unsafe_get proven !pc then
            regs.(insn.Insn.dst) <-
              stack_load_direct stack_data
                (Int64.to_int (Int64.sub addr stack_base))
                nbytes
          else (
            match Mem.load t.mem ~addr ~size:nbytes with
            | Ok v -> regs.(insn.Insn.dst) <- v
            | Error () ->
                fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = false }))
      | Insn.Store_imm size ->
          let addr = Int64.add regs.(insn.Insn.dst) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          if Array.unsafe_get proven !pc then
            stack_store_direct stack_data
              (Int64.to_int (Int64.sub addr stack_base))
              nbytes (sext_imm insn.Insn.imm)
          else (
            match Mem.store t.mem ~addr ~size:nbytes (sext_imm insn.Insn.imm) with
            | Ok () -> ()
            | Error () ->
                fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = true }))
      | Insn.Store_reg size ->
          let addr = Int64.add regs.(insn.Insn.dst) (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          if Array.unsafe_get proven !pc then
            stack_store_direct stack_data
              (Int64.to_int (Int64.sub addr stack_base))
              nbytes
              regs.(insn.Insn.src)
          else (
            match Mem.store t.mem ~addr ~size:nbytes regs.(insn.Insn.src) with
            | Ok () -> ()
            | Error () ->
                fault (Fault.Memory_access { pc = !pc; addr; size = nbytes; write = true }))
      | Insn.Lddw_head ->
          if !pc + 1 >= len then fault (Fault.Truncated_lddw { pc = !pc })
          else begin
            let tail = insns.(!pc + 1) in
            regs.(insn.Insn.dst) <- Insn.lddw_imm ~head:insn ~tail;
            next := !pc + 2
          end
      | Insn.Lddw_tail -> fault (Fault.Invalid_opcode { pc = !pc; opcode = 0 })
      | Insn.End endianness -> (
          match byte_swap !pc endianness insn.Insn.imm regs.(insn.Insn.dst) with
          | Ok v -> regs.(insn.Insn.dst) <- v
          | Error e -> fault e)
      | Insn.Ja ->
          stats.branches_taken <- stats.branches_taken + 1;
          next := !pc + 1 + insn.Insn.offset
      | Insn.Jcond (is64, cond, source) ->
          let src_value =
            match source with
            | Opcode.Src_imm -> sext_imm insn.Insn.imm
            | Opcode.Src_reg -> regs.(insn.Insn.src)
          in
          if condition cond is64 regs.(insn.Insn.dst) src_value then begin
            stats.branches_taken <- stats.branches_taken + 1;
            next := !pc + 1 + insn.Insn.offset
          end
      | Insn.Call -> (
          let id = Int32.to_int insn.Insn.imm in
          match Helper.find t.helpers id with
          | None -> fault (Fault.Unknown_helper { pc = !pc; id })
          | Some entry -> (
              stats.helper_calls <- stats.helper_calls + 1;
              Obs.event (fun () ->
                  Otrace.Helper_call { id; name = entry.Helper.name });
              stats.cycles <- stats.cycles + entry.Helper.cost_cycles;
              let args =
                {
                  Helper.a1 = regs.(1);
                  a2 = regs.(2);
                  a3 = regs.(3);
                  a4 = regs.(4);
                  a5 = regs.(5);
                }
              in
              match entry.Helper.fn t.mem args with
              | Ok r0 -> regs.(0) <- r0
              | Error message ->
                  fault (Fault.Helper_error { pc = !pc; id; message })))
      | Insn.Exit -> result := Some regs.(0)
      | Insn.Invalid opcode -> fault (Fault.Invalid_opcode { pc = !pc; opcode }));
      (match !result with None -> pc := !next | Some _ -> ())
    done;
    (match !result with Some r0 -> Ok r0 | None -> assert false)
  with
  | Abort f -> Error f
  | Invalid_argument _ ->
      (* A fast-path proof turned out wrong (analyzer bug): contain the
         escape as a memory fault instead of crashing the host. *)
      Error (Fault.Memory_access { pc = 0; addr = 0L; size = 0; write = false })

let exec ~args t =
  match t.fastpath with
  | Some fp -> exec_trimmed fp ~args t
  | None -> exec_checked ~args t

(* [run] = [exec] plus observability: per-run counters fed from the
   stats record, a run-latency histogram, and (when tracing) Vm_run /
   Fault events into the global ring. *)
let run ?(args = [||]) t =
  if not (Obs.enabled ()) then exec ~args t
  else begin
    let t0 = Obs.now_ns () in
    let outcome = exec ~args t in
    let stats = t.stats in
    Ometrics.incr m_runs;
    Ometrics.add m_insns stats.insns_executed;
    Ometrics.add m_branches stats.branches_taken;
    Ometrics.add m_helper_calls stats.helper_calls;
    Ometrics.add m_cycles stats.cycles;
    Ometrics.observe m_run_ns (Obs.now_ns () -. t0);
    (match outcome with
    | Ok _ -> ()
    | Error f ->
        Ometrics.incr m_faults;
        Obs.event (fun () ->
            Otrace.Fault { kind = Fault.kind f; detail = Fault.to_string f }));
    Obs.event (fun () ->
        Otrace.Vm_run
          {
            insns = stats.insns_executed;
            branches = stats.branches_taken;
            helpers = stats.helper_calls;
            cycles = stats.cycles;
            ok = Result.is_ok outcome;
          });
    outcome
  end
