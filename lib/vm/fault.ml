(* Faults a Femto-Container VM can raise.  Every fault aborts the current
   execution and is reported to the hosting engine; the host OS and other
   containers are unaffected (the paper's fault-isolation property). *)

type t =
  | Invalid_opcode of { pc : int; opcode : int }
  | Invalid_register of { pc : int; reg : int }
  | Readonly_register of { pc : int } (* write to r10 *)
  | Bad_jump of { pc : int; target : int }
  | Jump_to_lddw_tail of { pc : int; target : int }
  | Truncated_lddw of { pc : int }
  | Malformed_lddw_tail of { pc : int }
  | Division_by_zero of { pc : int }
  | Memory_access of { pc : int; addr : int64; size : int; write : bool }
  | Unknown_helper of { pc : int; id : int }
  | Helper_error of { pc : int; id : int; message : string }
  | Instruction_budget_exhausted of { executed : int }
  | Branch_budget_exhausted of { taken : int }
  | Fall_off_end of { pc : int }
  | Program_too_long of { len : int; max : int }
  | Empty_program
  | Nonzero_field of { pc : int; field : string }
  | Bad_end_instruction of { pc : int }

let to_string = function
  | Invalid_opcode { pc; opcode } ->
      Printf.sprintf "pc=%d: invalid opcode 0x%02x" pc opcode
  | Invalid_register { pc; reg } ->
      Printf.sprintf "pc=%d: register r%d out of range" pc reg
  | Readonly_register { pc } ->
      Printf.sprintf "pc=%d: write to read-only register r10" pc
  | Bad_jump { pc; target } ->
      Printf.sprintf "pc=%d: jump target %d outside program" pc target
  | Jump_to_lddw_tail { pc; target } ->
      Printf.sprintf "pc=%d: jump target %d lands inside an lddw pair" pc target
  | Truncated_lddw { pc } -> Printf.sprintf "pc=%d: lddw misses its second slot" pc
  | Malformed_lddw_tail { pc } ->
      Printf.sprintf "pc=%d: malformed lddw second slot" pc
  | Division_by_zero { pc } -> Printf.sprintf "pc=%d: division by zero" pc
  | Memory_access { pc; addr; size; write } ->
      Printf.sprintf "pc=%d: illegal %d-byte %s at 0x%Lx" pc size
        (if write then "store" else "load")
        addr
  | Unknown_helper { pc; id } -> Printf.sprintf "pc=%d: unknown helper %d" pc id
  | Helper_error { pc; id; message } ->
      Printf.sprintf "pc=%d: helper %d failed: %s" pc id message
  | Instruction_budget_exhausted { executed } ->
      Printf.sprintf "instruction budget exhausted after %d instructions" executed
  | Branch_budget_exhausted { taken } ->
      Printf.sprintf "branch budget exhausted after %d taken branches" taken
  | Fall_off_end { pc } ->
      Printf.sprintf "pc=%d: execution fell off the end of the program" pc
  | Program_too_long { len; max } ->
      Printf.sprintf "program has %d slots, budget allows %d" len max
  | Empty_program -> "empty program"
  | Nonzero_field { pc; field } ->
      Printf.sprintf "pc=%d: reserved field %s must be zero" pc field
  | Bad_end_instruction { pc } ->
      Printf.sprintf "pc=%d: program must end with exit or ja" pc

let pp ppf fault = Format.pp_print_string ppf (to_string fault)

(* Stable machine-readable discriminator, used by the trace layer and
   any metrics label that must not carry free-form text. *)
let kind = function
  | Invalid_opcode _ -> "invalid_opcode"
  | Invalid_register _ -> "invalid_register"
  | Readonly_register _ -> "readonly_register"
  | Bad_jump _ -> "bad_jump"
  | Jump_to_lddw_tail _ -> "jump_to_lddw_tail"
  | Truncated_lddw _ -> "truncated_lddw"
  | Malformed_lddw_tail _ -> "malformed_lddw_tail"
  | Division_by_zero _ -> "division_by_zero"
  | Memory_access _ -> "memory_access"
  | Unknown_helper _ -> "unknown_helper"
  | Helper_error _ -> "helper_error"
  | Instruction_budget_exhausted _ -> "instruction_budget_exhausted"
  | Branch_budget_exhausted _ -> "branch_budget_exhausted"
  | Fall_off_end _ -> "fall_off_end"
  | Program_too_long _ -> "program_too_long"
  | Empty_program -> "empty_program"
  | Nonzero_field _ -> "nonzero_field"
  | Bad_end_instruction _ -> "bad_end_instruction"
