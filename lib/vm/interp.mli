(** The optimized Femto-Container interpreter.

    Programs are pre-decoded into an array of typed instruction views at
    load time (the moral equivalent of the paper's computed jumptable).
    The interpreter trusts the pre-flight verifier for structural
    properties and performs the defensive runtime checks the verifier
    cannot do statically: allow-list memory access, division by zero, and
    the finite-execution budgets. *)

type stats = {
  mutable insns_executed : int;
  mutable branches_taken : int;
  mutable helper_calls : int;
  mutable cycles : int;  (** accumulated platform cycle-model cost *)
}

type t

type fastpath = { proven_stack : bool array }
(** Static proofs from [Femto_analysis]: [proven_stack.(pc)] marks a
    stack access proven in-bounds on every path.  Granting a fastpath
    also asserts the program is a verified DAG within both static
    budgets, so the trimmed loop drops the budget counters and the
    defensive per-instruction checks. *)

val no_cost : Femto_ebpf.Insn.kind -> int

val create :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  ?fastpath:fastpath ->
  ?kinds:Femto_ebpf.Insn.kind array ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  t
(** Pre-decode a program.  Callers should verify first; [run] still never
    crashes the host on an unverified program — it faults instead.
    [fastpath] must only be passed for analyzer-approved programs.
    [kinds], if given, must be the pre-decoded view of [program]; image
    spawns pass the shared array so instances skip the decode. *)

val fastpath_active : t -> bool
(** True when this instance runs on the trimmed interpreter loop. *)

val mem : t -> Mem.t
val stats : t -> stats
val registers : t -> int64 array

(** {2 Structural accessors}

    Used by the closure-threaded compiler ([Compile]), which shares this
    instance's memory map, stack buffer and stats record. *)

val program : t -> Femto_ebpf.Program.t

val kinds : t -> Femto_ebpf.Insn.kind array
(** The pre-decoded instruction views (shared, never mutated). *)

val config : t -> Config.t
val helpers : t -> Helper.t
val stack_data : t -> bytes
val cycle_cost : t -> Femto_ebpf.Insn.kind -> int

val ram_bytes : t -> int
(** Per-instance RAM in the paper's Table 3 sense: stack + register file
    + statistics + region table, from actual buffer sizes. *)

val run : ?args:int64 array -> t -> (int64, Fault.t) result
(** Execute from slot 0 with r1..r5 preloaded from [args]; returns r0. *)

(** {2 Shared instruction semantics}

    Used by the CertFC engine and the install-time transpiler so all
    three execution engines agree bit-for-bit. *)

val alu64 : int -> Femto_ebpf.Opcode.alu_op -> int64 -> int64 -> (int64, Fault.t) result
val alu32 : int -> Femto_ebpf.Opcode.alu_op -> int64 -> int64 -> (int64, Fault.t) result
val condition : Femto_ebpf.Opcode.jmp_cond -> bool -> int64 -> int64 -> bool
val byte_swap :
  int -> Femto_ebpf.Opcode.endianness -> int32 -> int64 -> (int64, Fault.t) result
