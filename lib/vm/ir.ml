(* Register IR over superblocks.

   The IR sits between the analyzer and the closure backend: the verified
   instruction array is regrouped into *superblocks* — maximal
   single-entry regions that extend across conditional branches (side
   exits) and stop only at unconditional control transfers or at the next
   branch target — and each instruction is lifted to a small register
   operation carrying the analyzer's facts (interval bounds, region
   typing, proven-in-bounds flags).  Optimization passes rewrite steps in
   place ([Femto_analysis.Passes]); [Compile.compile_ir] then emits one
   specialized closure per superblock.

   Accounting is batched but exact: every step keeps the [weight] (how
   many decoded-tier instructions it stands for — an absorbed lddw pair
   counts one, a merged ALU chain counts each member) and the cycle-model
   [cost] of its source instructions, so the backend can apply the
   decoded interpreter's statistics in bulk at the points where they are
   observable (fault-capable operations and block exits). *)

open Femto_ebpf

type operand = Imm of int64 | Reg of int

(* Region typing from the analyzer's lattice: which address space the
   access base was derived from. *)
type base_kind = Base_stack | Base_ctx | Base_other

type mem_fact = {
  base_kind : base_kind;
  lo : int;  (** lowest byte offset from the frame base (stack bases) *)
  hi : int;  (** highest byte offset from the frame base (stack bases) *)
  proven : bool;  (** in-bounds on every path, per the interval fixpoint *)
}

(* Where a branch goes: a lifted superblock, or (only in unverified
   programs) outside the code array — kept so fault identity matches the
   decoded tier exactly. *)
type dest = Block of int | Out_of_range of int

type op =
  | Alu of { is64 : bool; op : Opcode.alu_op; dst : int; src : operand }
      (** non-faulting for [Imm] divisors (the lifter proves them nonzero
          and turns zero divisors into [Trap]); 64-bit [Div]/[Mod] by
          register remain fault-capable *)
  | Movk of { dst : int; v : int64 }  (** constant load; absorbs lddw *)
  | Load of {
      dst : int;
      base : int;
      off : int;
      nbytes : int;
      fact : mem_fact option;
      elide : bool;  (** pass decision: direct stack access, check elided *)
      hoist : bool;  (** pass decision: allow-list scan behind a region cache *)
    }
  | Store of {
      base : int;
      off : int;
      nbytes : int;
      v : operand;
      fact : mem_fact option;
      elide : bool;
      hoist : bool;
    }
  | Swap of { dst : int; endianness : Opcode.endianness; width : int32 }
  | Call of { id : int }
  | Jcond of {
      is64 : bool;
      cond : Opcode.jmp_cond;
      dst : int;
      src : operand;
      dest : dest;
    }  (** side exit: taken leaves the superblock, untaken falls through *)
  | Nop  (** eliminated by a pass; weight and cost are still accounted *)
  | Trap of Fault.t  (** faults after this step's own accounting *)
  | Trap_pre of Fault.t  (** faults before any accounting (register range) *)

type step = { pc : int; weight : int; cost : int; op : op }

type terminator =
  | Exit of { pc : int; weight : int; cost : int }
  | Jump of { pc : int; weight : int; cost : int; dest : dest }
  | Fall of { dest : int }  (** fall-through into the next superblock *)
  | Halt of Fault.t  (** running past the end: decoded-tier fall-off fault *)

type block = {
  id : int;
  head : int;  (** pc of the first instruction *)
  steps : step array;
  term : terminator;
  weight : int;  (** max instructions one pass through can account *)
  branch : bool;  (** contains a branch (a [Jcond] step or [Jump] term) *)
}

type program = { blocks : block array; source_len : int }

(* ------------------------------------------------------------------ *)
(* Views used by the passes and the stats/JSON dumps.                 *)

let num_steps p =
  Array.fold_left (fun n b -> n + Array.length b.steps) 0 p.blocks

let count_ops f p =
  Array.fold_left
    (fun n b ->
      Array.fold_left (fun n s -> if f s.op then n + 1 else n) n b.steps)
    0 p.blocks

let elided_checks p =
  count_ops
    (function Load { elide; _ } | Store { elide; _ } -> elide | _ -> false)
    p

let hoisted_checks p =
  count_ops
    (function Load { hoist; _ } | Store { hoist; _ } -> hoist | _ -> false)
    p

(* ------------------------------------------------------------------ *)
(* Textual rendering (goldens, [fc analyze --ir]).                    *)

let operand_to_string = function
  | Imm v -> Int64.to_string v
  | Reg r -> Printf.sprintf "r%d" r

let base_kind_name = function
  | Base_stack -> "stack"
  | Base_ctx -> "ctx"
  | Base_other -> "other"

let fact_to_string = function
  | None -> ""
  | Some { base_kind; lo; hi; proven } ->
      Printf.sprintf " {%s [%d,%d]%s}" (base_kind_name base_kind) lo hi
        (if proven then " proven" else "")

let dest_to_string = function
  | Block id -> Printf.sprintf "b%d" id
  | Out_of_range pc -> Printf.sprintf "out(%d)" pc

let mem_suffix ~elide ~hoist =
  (if elide then " elide" else "") ^ if hoist then " hoist" else ""

let op_to_string = function
  | Alu { is64; op; dst; src } ->
      Printf.sprintf "%s%s r%d, %s" (Opcode.alu_op_name op)
        (if is64 then "" else "32")
        dst (operand_to_string src)
  | Movk { dst; v } -> Printf.sprintf "movk r%d, %Ld" dst v
  | Load { dst; base; off; nbytes; fact; elide; hoist } ->
      Printf.sprintf "ld%d r%d, [r%d%+d]%s%s" (nbytes * 8) dst base off
        (fact_to_string fact) (mem_suffix ~elide ~hoist)
  | Store { base; off; nbytes; v; fact; elide; hoist } ->
      Printf.sprintf "st%d [r%d%+d], %s%s%s" (nbytes * 8) base off
        (operand_to_string v) (fact_to_string fact) (mem_suffix ~elide ~hoist)
  | Swap { dst; endianness; width } ->
      Printf.sprintf "%s%ld r%d" (Opcode.endian_name endianness) width dst
  | Call { id } -> Printf.sprintf "call %d" id
  | Jcond { is64; cond; dst; src; dest } ->
      Printf.sprintf "%s%s r%d, %s -> %s" (Opcode.jmp_cond_name cond)
        (if is64 then "" else "32")
        dst (operand_to_string src) (dest_to_string dest)
  | Nop -> "nop"
  | Trap f -> Printf.sprintf "trap %s" (Fault.kind f)
  | Trap_pre f -> Printf.sprintf "trap! %s" (Fault.kind f)

let step_to_string s =
  Printf.sprintf "%d: %s%s" s.pc (op_to_string s.op)
    (if s.weight = 1 then "" else Printf.sprintf " (w%d)" s.weight)

let term_to_string = function
  | Exit { pc; _ } -> Printf.sprintf "exit@%d" pc
  | Jump { pc; dest; _ } ->
      Printf.sprintf "jump@%d -> %s" pc (dest_to_string dest)
  | Fall { dest } -> Printf.sprintf "fall -> b%d" dest
  | Halt f -> Printf.sprintf "halt %s" (Fault.kind f)
