(* Metrics registry: monotonic counters, gauges, and latency histograms
   with fixed log2-scale buckets.

   Everything is allocation-free on the update path — a counter bump is
   one mutable-field increment, a histogram observation is one array
   store — so the instrumented hot paths (the VM dispatch loop, the hook
   trigger path) stay cheap enough to leave compiled in. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Bucket [i] counts observations v with 2^i <= v < 2^(i+1); bucket 0
   also absorbs everything below 2.  63 buckets cover the full positive
   int range, so nanosecond latencies up to centuries fit. *)
let bucket_count = 63

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 32; order = [] }

let find_or_add t name build =
  match Hashtbl.find_opt t.table name with
  | Some metric -> metric
  | None ->
      let metric = build () in
      Hashtbl.replace t.table name metric;
      t.order <- name :: t.order;
      metric

let type_clash name =
  invalid_arg (Printf.sprintf "metric %s already registered with another type" name)

let counter t name =
  match find_or_add t name (fun () -> Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | _ -> type_clash name

let gauge t name =
  match find_or_add t name (fun () -> Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | _ -> type_clash name

let histogram t name =
  match
    find_or_add t name (fun () ->
        Histogram
          {
            h_name = name;
            buckets = Array.make bucket_count 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
          })
  with
  | Histogram h -> h
  | _ -> type_clash name

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let bucket_index v =
  if v < 2.0 then 0
  else
    let i = int_of_float (Float.log2 v) in
    if i >= bucket_count then bucket_count - 1 else i

let observe h v =
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let count h = h.h_count
let sum h = h.h_sum
let mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* [quantile h q] from the bucket counts: the upper bound of the bucket
   holding the q-th observation — log2-granular, which is plenty for
   order-of-magnitude latency tracking. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.of_int h.h_count *. q) in
      if r >= h.h_count then h.h_count - 1 else r
    in
    let acc = ref 0 in
    let result = ref h.h_max in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + h.buckets.(i);
         if !acc > rank then begin
           result := Float.pow 2.0 (float_of_int (i + 1));
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !result h.h_max
  end

let reset t =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 bucket_count 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
    t.table

(* --- export --- *)

let histogram_to_json h =
  let nonempty =
    List.filter
      (fun (_, n) -> n > 0)
      (List.init bucket_count (fun i -> (i, h.buckets.(i))))
  in
  Jsonx.Obj
    ([
       ("type", Jsonx.String "histogram");
       ("count", Jsonx.Int h.h_count);
       ("sum", Jsonx.Float h.h_sum);
       ("mean", Jsonx.Float (mean h));
     ]
    @ (if h.h_count = 0 then []
       else
         [
           ("min", Jsonx.Float h.h_min);
           ("max", Jsonx.Float h.h_max);
           ("p50", Jsonx.Float (quantile h 0.5));
           ("p99", Jsonx.Float (quantile h 0.99));
         ])
    @ [
        ( "buckets",
          Jsonx.Obj
            (List.map
               (fun (i, n) ->
                 (Printf.sprintf "lt_2e%d" (i + 1), Jsonx.Int n))
               nonempty) );
      ])

let metric_to_json = function
  | Counter c ->
      Jsonx.Obj [ ("type", Jsonx.String "counter"); ("value", Jsonx.Int c.c_value) ]
  | Gauge g ->
      Jsonx.Obj [ ("type", Jsonx.String "gauge"); ("value", Jsonx.Float g.g_value) ]
  | Histogram h -> histogram_to_json h

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let to_json t =
  let names = List.rev t.order in
  Jsonx.Obj
    (List.filter_map
       (fun name ->
         Option.map
           (fun metric -> (metric_name metric, metric_to_json metric))
           (Hashtbl.find_opt t.table name))
       names)
