(* Minimal JSON for the observability layer.

   The repo deliberately carries no third-party JSON dependency (the
   target class of device wouldn't either), so this is a small,
   self-contained value type with a writer and a strict-enough parser —
   the parser exists so the bench pipeline and the tests can round-trip
   the documents the writer emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- writer --- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print round-trippably; whole floats keep a ".0" so the parser
   can't silently narrow them to Int on the way back. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String key);
          Buffer.add_char buf ':';
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string value =
  let buf = Buffer.create 256 in
  write buf value;
  Buffer.contents buf

(* Pretty writer for the CLI surfaces: two-space indent. *)
let rec write_pretty buf indent = function
  | List (_ :: _ as items) ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          write_pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          write buf (String key);
          Buffer.add_string buf ": ";
          write_pretty buf (indent + 2) value)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | value -> write buf value

let to_string_pretty value =
  let buf = Buffer.create 512 in
  write_pretty buf 0 value;
  Buffer.contents buf

(* --- parser --- *)

type cursor = { text : string; mutable pos : int }

let fail cursor message =
  raise (Parse_error (Printf.sprintf "offset %d: %s" cursor.pos message))

let peek cursor =
  if cursor.pos < String.length cursor.text then Some cursor.text.[cursor.pos]
  else None

let advance cursor = cursor.pos <- cursor.pos + 1

let skip_ws cursor =
  let continue = ref true in
  while !continue do
    match peek cursor with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cursor
    | _ -> continue := false
  done

let expect cursor c =
  match peek cursor with
  | Some got when got = c -> advance cursor
  | Some got -> fail cursor (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail cursor (Printf.sprintf "expected %c, got end of input" c)

let parse_literal cursor word value =
  String.iter (fun c -> expect cursor c) word;
  value

let parse_string_body cursor =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cursor with
    | None -> fail cursor "unterminated string"
    | Some '"' -> advance cursor
    | Some '\\' -> (
        advance cursor;
        match peek cursor with
        | None -> fail cursor "unterminated escape"
        | Some c ->
            advance cursor;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if cursor.pos + 4 > String.length cursor.text then
                  fail cursor "truncated \\u escape";
                let hex = String.sub cursor.text cursor.pos 4 in
                cursor.pos <- cursor.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail cursor "bad \\u escape"
                in
                (* ASCII range only — all the writer ever emits *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else fail cursor "non-ASCII \\u escape unsupported"
            | c -> fail cursor (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c ->
        advance cursor;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cursor =
  let start = cursor.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek cursor with Some c -> is_number_char c | None -> false do
    advance cursor
  done;
  let repr = String.sub cursor.text start (cursor.pos - start) in
  match int_of_string_opt repr with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt repr with
      | Some f -> Float f
      | None -> fail cursor (Printf.sprintf "bad number %S" repr))

let rec parse_value cursor =
  skip_ws cursor;
  match peek cursor with
  | None -> fail cursor "unexpected end of input"
  | Some 'n' -> parse_literal cursor "null" Null
  | Some 't' -> parse_literal cursor "true" (Bool true)
  | Some 'f' -> parse_literal cursor "false" (Bool false)
  | Some '"' ->
      advance cursor;
      String (parse_string_body cursor)
  | Some '[' ->
      advance cursor;
      skip_ws cursor;
      if peek cursor = Some ']' then (
        advance cursor;
        List [])
      else
        let rec items acc =
          let item = parse_value cursor in
          skip_ws cursor;
          match peek cursor with
          | Some ',' ->
              advance cursor;
              items (item :: acc)
          | Some ']' ->
              advance cursor;
              List.rev (item :: acc)
          | _ -> fail cursor "expected , or ] in array"
        in
        List (items [])
  | Some '{' ->
      advance cursor;
      skip_ws cursor;
      if peek cursor = Some '}' then (
        advance cursor;
        Obj [])
      else
        let field () =
          skip_ws cursor;
          expect cursor '"';
          let key = parse_string_body cursor in
          skip_ws cursor;
          expect cursor ':';
          (key, parse_value cursor)
        in
        let rec fields acc =
          let f = field () in
          skip_ws cursor;
          match peek cursor with
          | Some ',' ->
              advance cursor;
              fields (f :: acc)
          | Some '}' ->
              advance cursor;
              List.rev (f :: acc)
          | _ -> fail cursor "expected , or } in object"
        in
        Obj (fields [])
  | Some _ -> parse_number cursor

let of_string text =
  let cursor = { text; pos = 0 } in
  let value = parse_value cursor in
  skip_ws cursor;
  if cursor.pos <> String.length text then fail cursor "trailing garbage";
  value

(* --- accessors (for tests and the bench pipeline) --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
