(* Femto_obs.Obs — the process-wide observability facade.

   One global metrics registry and one global trace ring, behind two
   switches:

   - [enabled]  gates metric updates.  On by default: an update is a
     single mutable store, cheap enough for the VM dispatch loop.
   - [tracing]  gates event recording.  Off by default: events allocate
     a record and take a timestamp, which is too much for per-helper
     granularity in benchmarks unless explicitly requested.

   Instrumented libraries cache their metric handles at module level
   ([counter]/[histogram] are idempotent), then guard updates with
   [enabled ()] and event emission with [tracing ()]. *)

let registry = Metrics.create ()
let ring = Trace.create ()

let enabled_flag = ref true
let tracing_flag = ref false

let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v
let tracing () = !tracing_flag
let set_tracing v = tracing_flag := v

(* Wall-clock nanoseconds.  Monotonic enough for the host-simulation
   latency histograms; overridable for tests or a virtual clock. *)
let default_now_ns () = Unix.gettimeofday () *. 1e9
let now_ns_ref = ref default_now_ns
let now_ns () = !now_ns_ref ()
let set_clock f = now_ns_ref := f

let counter name = Metrics.counter registry name
let gauge name = Metrics.gauge registry name
let histogram name = Metrics.histogram registry name

(* [event e] records into the global ring when tracing is on.  The lazy
   timestamp keeps the disabled path to two loads and a branch. *)
let event make =
  if !tracing_flag && !enabled_flag then
    Trace.record ring ~t_ns:(now_ns ()) (make ())

let reset () =
  Metrics.reset registry;
  Trace.clear ring

let snapshot_json () =
  Jsonx.Obj
    [
      ("schema", Jsonx.String "femto-obs/1");
      ("enabled", Jsonx.Bool !enabled_flag);
      ("tracing", Jsonx.Bool !tracing_flag);
      ("metrics", Metrics.to_json registry);
      ("trace", Trace.to_json ring);
    ]

let metrics_json () = Metrics.to_json registry
let trace_json () = Trace.to_json ring
