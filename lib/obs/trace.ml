(* Trace sink: a fixed-capacity ring buffer of typed events.

   Events cover the paths the paper's evaluation cares about — VM
   executions and faults (Tables 2-4), helper calls (the hook-call
   overhead of Table 4), SUIT update steps (§5) and CoAP request
   handling (§8.3).  The ring overwrites the oldest record when full, so
   the sink is safe to leave attached on a long-running device: memory
   is bounded, recording is O(1), and the JSON dump shows the most
   recent window plus how much history was shed. *)

type event =
  | Vm_run of {
      insns : int;
      branches : int;
      helpers : int;
      cycles : int;
      ok : bool;
    }
  | Fault of { kind : string; detail : string }
  | Helper_call of { id : int; name : string }
  | Hook_fired of {
      uuid : string;
      name : string;
      containers : int;
      faults : int;
    }
  | Suit_step of { step : string; ok : bool; ns : float }
  | Coap_request of { path : string; code : string; outcome : string }
  | Analysis_done of {
      insns : int;
      blocks : int;
      loops : bool;
      errors : int;
      warnings : int;
      fastpath : bool;
    }
  | Tier_selected of { tier : string; fused : int; proven : int }
  | Pipeline_update of { tenant : string; ok : bool; ns : float }

type record = { seq : int; t_ns : float; event : event }

type ring = {
  slots : record option array;
  mutable next : int; (* total records ever written; also next seq *)
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0 }

let capacity ring = Array.length ring.slots
let total ring = ring.next
let dropped ring = max 0 (ring.next - Array.length ring.slots)

let record ring ~t_ns event =
  let slot = ring.next mod Array.length ring.slots in
  ring.slots.(slot) <- Some { seq = ring.next; t_ns; event };
  ring.next <- ring.next + 1

let clear ring =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.next <- 0

(* Oldest-first list of the retained window. *)
let events ring =
  let cap = Array.length ring.slots in
  let start = if ring.next > cap then ring.next - cap else 0 in
  List.filter_map
    (fun i -> ring.slots.(i mod cap))
    (List.init (ring.next - start) (fun k -> start + k))

let event_kind = function
  | Vm_run _ -> "vm_run"
  | Fault _ -> "fault"
  | Helper_call _ -> "helper_call"
  | Hook_fired _ -> "hook_fired"
  | Suit_step _ -> "suit_step"
  | Coap_request _ -> "coap_request"
  | Analysis_done _ -> "analysis_done"
  | Tier_selected _ -> "tier_selected"
  | Pipeline_update _ -> "pipeline_update"

let event_fields = function
  | Vm_run { insns; branches; helpers; cycles; ok } ->
      [
        ("insns", Jsonx.Int insns);
        ("branches", Jsonx.Int branches);
        ("helpers", Jsonx.Int helpers);
        ("cycles", Jsonx.Int cycles);
        ("ok", Jsonx.Bool ok);
      ]
  | Fault { kind; detail } ->
      [ ("fault", Jsonx.String kind); ("detail", Jsonx.String detail) ]
  | Helper_call { id; name } ->
      [ ("id", Jsonx.Int id); ("name", Jsonx.String name) ]
  | Hook_fired { uuid; name; containers; faults } ->
      [
        ("uuid", Jsonx.String uuid);
        ("name", Jsonx.String name);
        ("containers", Jsonx.Int containers);
        ("faults", Jsonx.Int faults);
      ]
  | Suit_step { step; ok; ns } ->
      [ ("step", Jsonx.String step); ("ok", Jsonx.Bool ok); ("ns", Jsonx.Float ns) ]
  | Coap_request { path; code; outcome } ->
      [
        ("path", Jsonx.String path);
        ("code", Jsonx.String code);
        ("outcome", Jsonx.String outcome);
      ]
  | Analysis_done { insns; blocks; loops; errors; warnings; fastpath } ->
      [
        ("insns", Jsonx.Int insns);
        ("blocks", Jsonx.Int blocks);
        ("loops", Jsonx.Bool loops);
        ("errors", Jsonx.Int errors);
        ("warnings", Jsonx.Int warnings);
        ("fastpath", Jsonx.Bool fastpath);
      ]
  | Tier_selected { tier; fused; proven } ->
      [
        ("tier", Jsonx.String tier);
        ("fused", Jsonx.Int fused);
        ("proven", Jsonx.Int proven);
      ]
  | Pipeline_update { tenant; ok; ns } ->
      [
        ("tenant", Jsonx.String tenant);
        ("ok", Jsonx.Bool ok);
        ("ns", Jsonx.Float ns);
      ]

let record_to_json { seq; t_ns; event } =
  Jsonx.Obj
    (("seq", Jsonx.Int seq)
    :: ("t_ns", Jsonx.Float t_ns)
    :: ("event", Jsonx.String (event_kind event))
    :: event_fields event)

let to_json ring =
  Jsonx.Obj
    [
      ("capacity", Jsonx.Int (capacity ring));
      ("total", Jsonx.Int (total ring));
      ("dropped", Jsonx.Int (dropped ring));
      ("events", Jsonx.List (List.map record_to_json (events ring)));
    ]
