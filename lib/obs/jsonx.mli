(* Minimal dependency-free JSON: value type, writer, strict parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_string_pretty : t -> string

(* [of_string s] parses the subset the writer emits (numbers, strings
   with ASCII escapes, arrays, objects).  Raises [Parse_error]. *)
val of_string : string -> t

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
