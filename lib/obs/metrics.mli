(* Metrics registry: counters, gauges, log2-bucket latency histograms.
   Update operations are allocation-free; lookups by name go through a
   hashtable, so hot paths should hold on to the returned handle. *)

type counter
type gauge
type histogram
type t

val create : unit -> t

(* [counter t name] returns the existing counter of that name or
   registers a fresh one (idempotent).  Raises [Invalid_argument] when
   [name] is already registered as a different metric type; likewise for
   [gauge] and [histogram]. *)
val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val count : histogram -> int
val sum : histogram -> float
val mean : histogram -> float

(* Log2-granular quantile estimate (upper bucket bound, clamped to the
   observed max). *)
val quantile : histogram -> float -> float

(* Zero every metric, keeping registrations (handles stay valid). *)
val reset : t -> unit

val to_json : t -> Jsonx.t
