(* Fixed-capacity ring buffer of typed trace events. *)

type event =
  | Vm_run of {
      insns : int;
      branches : int;
      helpers : int;
      cycles : int;
      ok : bool;
    }
  | Fault of { kind : string; detail : string }
  | Helper_call of { id : int; name : string }
  | Hook_fired of {
      uuid : string;
      name : string;
      containers : int;
      faults : int;
    }
  | Suit_step of { step : string; ok : bool; ns : float }
  | Coap_request of { path : string; code : string; outcome : string }
  | Analysis_done of {
      insns : int;
      blocks : int;
      loops : bool;
      errors : int;
      warnings : int;
      fastpath : bool;
    }
  | Tier_selected of { tier : string; fused : int; proven : int }
  | Pipeline_update of { tenant : string; ok : bool; ns : float }

type record = { seq : int; t_ns : float; event : event }
type ring

val default_capacity : int
val create : ?capacity:int -> unit -> ring
val capacity : ring -> int

(* [total] counts every record ever written; [dropped] how many of those
   the ring has already overwritten. *)
val total : ring -> int
val dropped : ring -> int

val record : ring -> t_ns:float -> event -> unit
val clear : ring -> unit

(* The retained window, oldest first. *)
val events : ring -> record list

val event_kind : event -> string
val record_to_json : record -> Jsonx.t
val to_json : ring -> Jsonx.t
