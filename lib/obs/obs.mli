(* Process-wide observability facade: one metrics registry, one trace
   ring, two switches.  See DESIGN.md "Observability". *)

val registry : Metrics.t
val ring : Trace.ring

(* Master switch for metric updates (default: on). *)
val enabled : unit -> bool
val set_enabled : bool -> unit

(* Switch for trace-event recording (default: off). *)
val tracing : unit -> bool
val set_tracing : bool -> unit

val now_ns : unit -> float
val set_clock : (unit -> float) -> unit

(* Handles into the global registry (idempotent per name). *)
val counter : string -> Metrics.counter
val gauge : string -> Metrics.gauge
val histogram : string -> Metrics.histogram

(* [event make] records [make ()] into the global ring iff tracing (and
   the master switch) is on; [make] is not called otherwise. *)
val event : (unit -> Trace.event) -> unit

(* Zero all metrics and clear the ring (handles stay valid). *)
val reset : unit -> unit

val snapshot_json : unit -> Jsonx.t
val metrics_json : unit -> Jsonx.t
val trace_json : unit -> Jsonx.t
